#include "src/dbg/target.h"

#include <cstring>

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace dbg {

Target::Target(const MemoryDomain* memory, LatencyModel model)
    : memory_(memory),
      model_(std::move(model)),
      trace_flag_(vl::Tracer::Instance().enabled_flag()) {
  // The most recently created target drives trace timestamps.
  vl::Tracer::Instance().SetClock(&clock_);
}

Target::~Target() { vl::Tracer::Instance().ClearClockIf(&clock_); }

void Target::set_model(LatencyModel model) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  FlushModelStatsLocked();
  model_ = std::move(model);
}

void Target::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  clock_.Reset();
  reads_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  dirty_stats_ = DirtyStats{};
  by_model_.clear();
  model_nanos_base_ = model_reads_base_ = model_bytes_base_ = 0;
  // The dbg.read.* histograms and per-type counters fed by RecordRead are
  // logically part of this target's read stats; clear them together so
  // back-to-back bench phases start from zero. Same for the dirty-log
  // counters fed by RecordDirtyQuery.
  vl::MetricsRegistry::Instance().ResetPrefix("dbg.read");
  vl::MetricsRegistry::Instance().ResetPrefix("dirty.");
  // check.* counters are fed by sweeps charged on this clock; a reset that
  // zeroes the clock but kept stale sweep charges would break the stats-schema
  // invariant that reset zeroes every counter family.
  vl::MetricsRegistry::Instance().ResetPrefix("check.");
  // Same invariant for the vectored-read batches and the extraction-plan
  // counters: both families account charges on this clock.
  vl::MetricsRegistry::Instance().ResetPrefix("read.vector.");
  vl::MetricsRegistry::Instance().ResetPrefix("plan.");
}

size_t Target::ReadVector(std::vector<ReadSpan>& spans) {
  if (spans.empty()) {
    return 0;
  }
  size_t ok_count = 0;
  size_t ok_bytes = 0;
  for (ReadSpan& span : spans) {
    span.ok = span.len != 0 && span.out != nullptr &&
              memory_->ReadBytes(span.addr, span.out, span.len);
    if (span.ok) {
      ++ok_count;
      ok_bytes += span.len;
    }
  }
  // One batched round trip: base latency once for the whole request, payload
  // per successfully transferred byte. The batch counts as a single read so
  // the classic invariant clock == reads * per_access + bytes * per_byte
  // keeps holding exactly.
  uint64_t cost = model_.per_access_ns + model_.per_byte_ns * ok_bytes;
  clock_.AdvanceNanos(cost);
  reads_.store(reads_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  bytes_read_.store(bytes_read_.load(std::memory_order_relaxed) + ok_bytes,
                    std::memory_order_relaxed);
  // Batch accounting is a cold path (once per wavefront, not per read), so
  // these counters are unconditional like the check.* family — `vctrl stats`
  // reports them without tracing enabled.
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  metrics.GetCounter("read.vector.batches")->Add();
  metrics.GetCounter("read.vector.spans")->Add(ok_count);
  metrics.GetCounter("read.vector.bytes")->Add(ok_bytes);
  if (ok_count > 0) {
    // Every span beyond the first would have been its own round trip.
    metrics.GetCounter("read.vector.avoided_round_trips")->Add(ok_count - 1);
  }
  if (trace_flag_->load(std::memory_order_relaxed)) {
    vl::Tracer::Instance().CompleteEvent(
        "dbg.read_vector", clock_.nanos() - cost, cost,
        {{"spans", static_cast<int64_t>(ok_count)},
         {"bytes", static_cast<int64_t>(ok_bytes)}});
  }
  return ok_count;
}

DirtyPageInfo Target::DirtyPagesSince(uint64_t since_generation) {
  DirtyPageInfo info = memory_->DirtyPagesSince(since_generation);
  if (!info.supported) {
    return info;
  }
  // One dirty-log round trip plus the bitmap payload (one bit per page).
  uint64_t bitmap_bytes = (info.pages_total + 7) / 8;
  uint64_t cost = model_.dirty_query_ns + model_.per_byte_ns * bitmap_bytes;
  clock_.AdvanceNanos(cost);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    dirty_stats_.queries++;
    dirty_stats_.pages_scanned += info.pages_scanned;
    dirty_stats_.pages_dirty += info.dirty_pages.size();
    dirty_stats_.charged_ns += cost;
  }
  if (trace_flag_->load(std::memory_order_relaxed)) {
    RecordDirtyQuery(info, cost);  // tracing slow path, out of line
  }
  return info;
}

void Target::RecordDirtyQuery(const DirtyPageInfo& info, uint64_t cost) {
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  metrics.GetCounter("dirty.queries")->Add();
  metrics.GetCounter("dirty.pages_scanned")->Add(info.pages_scanned);
  metrics.GetCounter("dirty.pages_dirty")->Add(info.dirty_pages.size());
  vl::Tracer& tracer = vl::Tracer::Instance();
  // Attribute the query to whatever the pipeline was doing (the clock
  // advance already landed inside the open span; this surfaces it as an
  // argument in the explain tree).
  tracer.Annotate("dirty.query_ns", static_cast<int64_t>(cost));
  tracer.Annotate("dirty.pages_dirty", static_cast<int64_t>(info.dirty_pages.size()));
  tracer.CompleteEvent("dbg.dirty_query", clock_.nanos() - cost, cost,
                       {{"pages_dirty", static_cast<int64_t>(info.dirty_pages.size())},
                        {"pages_scanned", static_cast<int64_t>(info.pages_scanned)}});
}

vl::Json Target::DirtyStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["queries"] = vl::Json::Int(static_cast<int64_t>(queries));
  j["pages_scanned"] = vl::Json::Int(static_cast<int64_t>(pages_scanned));
  j["pages_dirty"] = vl::Json::Int(static_cast<int64_t>(pages_dirty));
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  return j;
}

Target::DirtyStats Target::dirty_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return dirty_stats_;
}

std::map<std::string, TransportStats> Target::per_model_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  FlushModelStatsLocked();
  return by_model_;
}

void Target::FlushModelStatsLocked() const {
  TransportStats& stats = by_model_[model_.name];
  stats.charged_ns += clock_.nanos() - model_nanos_base_;
  stats.reads += reads() - model_reads_base_;
  stats.bytes += bytes_read() - model_bytes_base_;
  model_nanos_base_ = clock_.nanos();
  model_reads_base_ = reads();
  model_bytes_base_ = bytes_read();
}

void Target::RecordRead(size_t len, uint64_t cost) {
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  metrics.GetHistogram("dbg.read.bytes")->Record(len);
  metrics.GetHistogram("dbg.read.latency_ns")->Record(cost);
  const char* tag = read_tag_ != nullptr ? read_tag_ : "untyped";
  metrics.GetCounter(std::string("dbg.read.by_type.") + tag)->Add();
  metrics.GetCounter(std::string("dbg.read.bytes.by_type.") + tag)->Add(len);
  vl::Tracer::Instance().CompleteEvent(
      "dbg.read", clock_.nanos() - cost, cost,
      {{"bytes", static_cast<int64_t>(len)}});
}

vl::Json TransportStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["reads"] = vl::Json::Int(static_cast<int64_t>(reads));
  j["bytes"] = vl::Json::Int(static_cast<int64_t>(bytes));
  return j;
}

vl::Json Target::StatsToJson() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  FlushModelStatsLocked();
  vl::Json j = vl::Json::Object();
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(clock_.nanos()));
  j["reads"] = vl::Json::Int(static_cast<int64_t>(reads()));
  j["bytes"] = vl::Json::Int(static_cast<int64_t>(bytes_read()));
  j["model"] = vl::Json::Str(model_.name);
  j["dirty"] = dirty_stats_.ToJson();
  vl::Json per_model = vl::Json::Object();
  for (const auto& [name, stats] : by_model_) {
    per_model[name] = stats.ToJson();
  }
  j["per_model"] = std::move(per_model);
  return j;
}

vl::Status Target::ReadBytes(uint64_t addr, void* out, size_t len) {
  if (!memory_->ReadBytes(addr, out, len)) {
    return vl::MemoryFaultError(
        vl::StrFormat("cannot read %zu bytes at 0x%llx", len,
                      static_cast<unsigned long long>(addr)));
  }
  Charge(len);
  return vl::Status::Ok();
}

vl::StatusOr<uint64_t> Target::ReadUnsigned(uint64_t addr, size_t size) {
  if (size == 0 || size > 8) {
    return vl::InvalidArgumentError(vl::StrFormat("bad scalar width %zu", size));
  }
  uint64_t value = 0;
  VL_RETURN_IF_ERROR(ReadBytes(addr, &value, size));  // little-endian host
  return value;
}

vl::StatusOr<int64_t> Target::ReadSigned(uint64_t addr, size_t size) {
  VL_ASSIGN_OR_RETURN(uint64_t raw, ReadUnsigned(addr, size));
  if (size < 8) {
    uint64_t sign_bit = 1ull << (size * 8 - 1);
    if ((raw & sign_bit) != 0) {
      raw |= ~((sign_bit << 1) - 1);
    }
  }
  return static_cast<int64_t>(raw);
}

vl::StatusOr<std::string> Target::ReadCString(uint64_t addr, size_t max_len) {
  std::string out;
  // Model a single string-fetch request (GDB reads strings in one or few
  // packets); we charge per chunk of 64 bytes.
  char chunk[64];
  while (out.size() < max_len) {
    size_t want = std::min(sizeof(chunk), max_len - out.size());
    if (!memory_->ReadBytes(addr + out.size(), chunk, want)) {
      // Retry byte-wise up to the boundary.
      size_t ok = 0;
      while (ok < want && memory_->ReadBytes(addr + out.size() + ok, chunk + ok, 1)) {
        ++ok;
      }
      if (ok == 0) {
        return vl::MemoryFaultError(vl::StrFormat(
            "cannot read string at 0x%llx", static_cast<unsigned long long>(addr)));
      }
      want = ok;
    }
    Charge(want);
    for (size_t i = 0; i < want; ++i) {
      if (chunk[i] == '\0') {
        return out;
      }
      out.push_back(chunk[i]);
    }
  }
  return out;
}

}  // namespace dbg
