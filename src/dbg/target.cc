#include "src/dbg/target.h"

#include <cstring>

#include "src/support/str.h"

namespace dbg {

vl::Status Target::ReadBytes(uint64_t addr, void* out, size_t len) {
  if (!memory_->ReadBytes(addr, out, len)) {
    return vl::MemoryFaultError(
        vl::StrFormat("cannot read %zu bytes at 0x%llx", len,
                      static_cast<unsigned long long>(addr)));
  }
  Charge(len);
  return vl::Status::Ok();
}

vl::StatusOr<uint64_t> Target::ReadUnsigned(uint64_t addr, size_t size) {
  if (size == 0 || size > 8) {
    return vl::InvalidArgumentError(vl::StrFormat("bad scalar width %zu", size));
  }
  uint64_t value = 0;
  VL_RETURN_IF_ERROR(ReadBytes(addr, &value, size));  // little-endian host
  return value;
}

vl::StatusOr<int64_t> Target::ReadSigned(uint64_t addr, size_t size) {
  VL_ASSIGN_OR_RETURN(uint64_t raw, ReadUnsigned(addr, size));
  if (size < 8) {
    uint64_t sign_bit = 1ull << (size * 8 - 1);
    if ((raw & sign_bit) != 0) {
      raw |= ~((sign_bit << 1) - 1);
    }
  }
  return static_cast<int64_t>(raw);
}

vl::StatusOr<std::string> Target::ReadCString(uint64_t addr, size_t max_len) {
  std::string out;
  // Model a single string-fetch request (GDB reads strings in one or few
  // packets); we charge per chunk of 64 bytes.
  char chunk[64];
  while (out.size() < max_len) {
    size_t want = std::min(sizeof(chunk), max_len - out.size());
    if (!memory_->ReadBytes(addr + out.size(), chunk, want)) {
      // Retry byte-wise up to the boundary.
      size_t ok = 0;
      while (ok < want && memory_->ReadBytes(addr + out.size() + ok, chunk + ok, 1)) {
        ++ok;
      }
      if (ok == 0) {
        return vl::MemoryFaultError(vl::StrFormat(
            "cannot read string at 0x%llx", static_cast<unsigned long long>(addr)));
      }
      want = ok;
    }
    Charge(want);
    for (size_t i = 0; i < want; ++i) {
      if (chunk[i] == '\0') {
        return out;
      }
      out.push_back(chunk[i]);
    }
  }
  return out;
}

}  // namespace dbg
