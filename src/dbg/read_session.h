// ReadSession: the debugger front-end's read API, with a transport-aware
// block cache.
//
// The paper's central cost model is that every target round trip is brutally
// expensive (a single uint64 over serial KGDB costs ~5 ms), yet the extract
// pipeline naturally reads one field at a time. A ReadSession amortizes those
// round trips: on a miss it fetches a whole aligned block (default 256 B), so
// neighboring struct fields ride one transport request, and repeated pane
// refreshes over unchanged memory cost nothing at all.
//
// Correctness contract (epoch invalidation): the MemoryDomain under the
// Target reports a monotonically increasing `generation()`; the simulated
// kernel bumps it on every mutation entry point (`TickCpu`, workload steps,
// `QueueMmPercpuWork`). A ReadSession revalidates the generation before every
// read and drops all cached blocks when it changed, so a pane refresh after a
// kernel step never renders stale memory. Code that mutates kernel memory
// out-of-band (tests poking subsystems directly) must either bump the kernel
// generation or call InvalidateAll(). See docs/caching.md.
//
// All extract-pipeline consumers (ViewCL interpreter, ViewQL raw-field WHERE
// fallback, the C-expression engine, decorators) read through a ReadSession;
// Target's raw API remains for tests and benches that need exact per-request
// accounting.

#ifndef SRC_DBG_READ_SESSION_H_
#define SRC_DBG_READ_SESSION_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dbg/target.h"
#include "src/dbg/type.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace dbg {

// NOTE: for client-facing code this struct is superseded by
// vserve::SessionOptions (src/serve/options.h), which consolidates the cache
// fields with the render/engine/dedup/admission knobs and validates the
// combination fail-fast. CacheConfig remains the dbg-layer carrier that
// SessionOptions lowers to (ToCacheConfig/FromCacheConfig); construct it
// directly only when wiring a bare KernelDebugger without the serving layer.
struct CacheConfig {
  // Aligned fetch granularity in bytes (rounded up to a power of two).
  // 0 disables caching entirely: the session becomes a passthrough whose
  // charges are identical to raw Target reads.
  size_t block_bytes = 256;
  // LRU capacity in blocks (default 4096 blocks = 1 MiB at 256 B).
  size_t capacity_blocks = 4096;
  // Delta invalidation (docs/caching.md#incremental-invalidation): on an
  // epoch change, query the target's dirty-page log and evict only the
  // blocks overlapping dirty pages. Falls back to a whole-cache flush when
  // the domain has no dirty log or the dirty ratio exceeds max_dirty_ratio.
  // Off by default, so the classic contract (full flush per epoch) stays
  // exact for existing sessions. NOTE: code that mutates target memory
  // out-of-band must bump the memory generation — a bare InvalidateAll() is
  // not enough once page-epoch consumers (viewcl memoization) are attached.
  bool delta_invalidation = false;
  // Above this fraction of dirty pages, block-wise eviction walks most of
  // the cache for nothing; one flush is cheaper and just as correct.
  double max_dirty_ratio = 0.5;

  static CacheConfig Disabled() { return CacheConfig{0, 0}; }
  // Block cache + dirty-log delta invalidation (incremental refresh).
  static CacheConfig Incremental() {
    CacheConfig config;
    config.delta_invalidation = true;
    return config;
  }
};

// Byte-level hit/miss accounting for one session. Field names follow the
// stats schema in docs/observability.md: `*_ns`, `reads`, `bytes`, `hits`,
// `misses`.
struct CacheStats {
  uint64_t hits = 0;            // block lookups served from cache
  uint64_t misses = 0;          // block lookups that issued a transport fetch
  uint64_t hit_bytes = 0;       // requested bytes served without a round trip
  uint64_t miss_bytes = 0;      // requested bytes that triggered the fetch
  uint64_t block_fetches = 0;   // transport round trips issued for blocks
  uint64_t fetched_bytes = 0;   // bytes pulled over the transport for blocks
  uint64_t evictions = 0;       // blocks dropped by LRU pressure
  uint64_t invalidations = 0;   // whole-cache epoch flushes
  uint64_t uncached_reads = 0;  // direct fallback reads (unreadable blocks)
  uint64_t prefetches = 0;      // PrefetchObject calls
  // Incremental-refresh accounting (docs/caching.md#incremental-invalidation).
  uint64_t delta_invalidations = 0;      // epoch changes absorbed block-wise
  uint64_t invalidated_bytes_full = 0;   // cached bytes dropped by full flushes
  uint64_t invalidated_bytes_delta = 0;  // cached bytes dropped by delta eviction
  uint64_t delta_prefetches = 0;         // re-prefetches narrowed to dirty pages
  // Vectored-fetch accounting (docs/caching.md#vectored-reads).
  uint64_t vector_batches = 0;  // Target::ReadVector batches issued
  uint64_t vector_blocks = 0;   // blocks filled by those batches

  double HitRate() const {
    uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }

  // {"hits", "misses", "hit_bytes", "miss_bytes", "block_fetches",
  //  "fetched_bytes", "evictions", "invalidations", "uncached_reads",
  //  "prefetches", "delta_invalidations", "invalidated_bytes_full",
  //  "invalidated_bytes_delta", "delta_prefetches", "vector_batches",
  //  "vector_blocks"}
  vl::Json ToJson() const;
};

class ReadSession {
 public:
  explicit ReadSession(Target* target, CacheConfig config = CacheConfig{});

  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  // --- reads (mirror Target's API; blocks are fetched on miss) ---
  vl::Status ReadBytes(uint64_t addr, void* out, size_t len);
  vl::StatusOr<uint64_t> ReadUnsigned(uint64_t addr, size_t size);
  vl::StatusOr<int64_t> ReadSigned(uint64_t addr, size_t size);
  // Reads a NUL-terminated string of at most max_len bytes.
  vl::StatusOr<std::string> ReadCString(uint64_t addr, size_t max_len = 256);

  // Prefetch hint: pulls the whole object into the cache in
  // ceil(size/block) aligned requests before the interpreter walks its
  // members. Failures are ignored (partially readable objects still
  // benefit); a no-op when caching is disabled.
  void PrefetchObject(uint64_t addr, const Type* type);
  void Prefetch(uint64_t addr, size_t len);

  // One address range of a vectored fetch (FetchSpans).
  struct Span {
    uint64_t addr = 0;
    size_t len = 0;
  };
  struct SpanFetch {
    size_t batches = 0;         // vectored transport requests issued (0 or 1)
    size_t fetched_blocks = 0;  // blocks the batch pulled into the cache
  };
  // The extraction-plan executor's entry point
  // (docs/caching.md#vectored-reads): ensures every byte of the given spans
  // is cached, gathering all missing aligned blocks into ONE
  // Target::ReadVector batch, so a whole wavefront of independent reads
  // costs one base latency instead of one per block. Spans already cached
  // cost nothing; unreadable blocks are skipped (later reads fall back to
  // the exact-range path). When `snapshot` is non-null, every block covering
  // the spans — cached or just fetched — is copied into it (block base ->
  // bytes), giving parallel decode workers a read-only view of the
  // wavefront's memory without touching the session. No-op when caching is
  // disabled.
  SpanFetch FetchSpans(const std::vector<Span>& spans,
                       std::unordered_map<uint64_t, std::vector<uint8_t>>* snapshot);

  // Drops every cached block (does not touch stats counters except nothing).
  void InvalidateAll();
  // Swaps the cache configuration, dropping all cached blocks.
  void Reconfigure(CacheConfig config);

  // --- incremental refresh (delta invalidation + page epochs) ---
  // Revalidates the epoch now, running the same delta/full invalidation a
  // read would trigger, and returns the current epoch. Memoization layers
  // call this before consulting RangeCleanSince.
  uint64_t SyncEpoch();
  uint64_t epoch() const { return epoch_; }
  // True when this session is configured for dirty-log delta invalidation.
  bool delta_enabled() const { return config_.delta_invalidation && cache_enabled(); }
  // True iff no byte of [addr, addr+len) has been reported dirty after
  // `epoch` by the target's dirty log. Conservative: history this session
  // has not observed (epochs before its first dirty query, or any epoch
  // transition handled by a blind full flush) reports dirty.
  bool RangeCleanSince(uint64_t addr, size_t len, uint64_t epoch) const;

  // Page-access scopes (viewcl memoization): while at least one scope is
  // open, every byte range read through this session is recorded
  // page-granularly into the innermost scope. PopPageScope returns the
  // scope's pages and merges them into the parent scope, so a box's scope
  // ends up covering its whole subtree. NotePages merges replayed pages
  // (from a memo hit, which performs no reads) into the open scope.
  void PushPageScope();
  std::vector<uint64_t> PopPageScope();
  void NotePages(const std::vector<uint64_t>& pages);

  bool cache_enabled() const { return config_.block_bytes != 0; }
  const CacheConfig& config() const { return config_; }
  size_t cached_blocks() const { return blocks_.size(); }
  Target* target() const { return target_; }

  const CacheStats& cache_stats() const { return stats_; }
  void ResetCacheStats() { stats_ = CacheStats{}; }
  // Cache-side stats only; Target::StatsToJson() has the transport side.
  vl::Json StatsToJson() const;

  // Read attribution: forwards to Target's tag so per-type counters keep
  // working (block fetches are charged to the type whose walk misses).
  class TagScope {
   public:
    TagScope(ReadSession* session, const char* tag)
        : inner_(session->target(), tag) {}

   private:
    Target::TagScope inner_;
  };

 private:
  struct Block {
    std::vector<uint8_t> bytes;
    std::list<uint64_t>::iterator lru_it;  // position in lru_ (front = hottest)
  };

  // Granularity of page-epoch bookkeeping (RangeCleanSince, page scopes).
  // Dirty pages a domain reports at another page size are expanded/aligned
  // to these granules.
  static constexpr uint64_t kPageGranule = 4096;

  // Invalidates stale cache state if the memory domain's generation moved:
  // delta (dirty-page) eviction when configured and supported, else a full
  // flush.
  void CheckEpoch();
  // Delta path: records dirty-page epochs, then evicts block-wise (or falls
  // back to a full flush past the dirty-ratio threshold).
  void ApplyDirtyInfo(const DirtyPageInfo& info, uint64_t now);
  // Full flush with accounting (the classic epoch contract).
  void FullInvalidate();
  // Records the granules of [addr, addr+len) into the innermost page scope.
  void RecordPages(uint64_t addr, size_t len);
  // Returns the cached block with base address `base`, fetching it on miss.
  // nullptr if the block cannot be read as a whole (caller falls back to a
  // direct ranged read). `hit` reports whether the block was already present.
  const Block* LookupOrFetch(uint64_t base, bool* hit);

  Target* target_;
  const std::atomic<bool>* trace_flag_;  // Tracer's enabled flag (cached)
  CacheConfig config_;
  size_t block_shift_ = 0;
  uint64_t epoch_ = 0;
  CacheStats stats_;
  std::unordered_map<uint64_t, Block> blocks_;  // keyed by block base address
  std::list<uint64_t> lru_;                     // front = most recently used

  // --- incremental refresh state ---
  // Last epoch each granule was reported dirty at (granule base -> epoch).
  std::unordered_map<uint64_t, uint64_t> page_last_dirty_;
  // Epochs below this have unknown page history (RangeCleanSince reports
  // dirty): the session's start epoch, raised past any transition handled
  // without dirty info.
  uint64_t dirty_floor_ = 0;
  // Open page-access scopes (innermost last).
  std::vector<std::unordered_set<uint64_t>> page_scopes_;
  // Objects PrefetchObject has warmed: object addr -> {size, epoch}. Lets a
  // re-prefetch warm only granules dirtied since the last one.
  struct PrefetchedObject {
    size_t bytes = 0;
    uint64_t epoch = 0;
  };
  std::unordered_map<uint64_t, PrefetchedObject> prefetched_;
};

}  // namespace dbg

#endif  // SRC_DBG_READ_SESSION_H_
