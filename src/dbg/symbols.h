// Symbol tables: global variables (name -> typed location) and function
// addresses (address -> name, feeding the FunPtr text decorator).

#ifndef SRC_DBG_SYMBOLS_H_
#define SRC_DBG_SYMBOLS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/dbg/value.h"

namespace dbg {

class SymbolTable {
 public:
  // Registers a global variable at a fixed address; re-registering a name
  // rebinds it (harnesses repoint target_task/target_file between plots).
  void AddGlobal(std::string_view name, const Type* type, uint64_t addr) {
    globals_.insert_or_assign(std::string(name), Value::MakeLValue(type, addr));
  }

  // Looks up a global; returns false if unknown.
  bool FindGlobal(std::string_view name, Value* out) const {
    auto it = globals_.find(name);
    if (it == globals_.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  void AddFunction(uint64_t addr, std::string_view name) {
    functions_[addr] = std::string(name);
  }

  // Symbolizes a code address; empty string when unknown.
  std::string FunctionName(uint64_t addr) const {
    auto it = functions_.find(addr);
    return it != functions_.end() ? it->second : std::string();
  }

  const std::map<std::string, Value, std::less<>>& globals() const { return globals_; }

 private:
  std::map<std::string, Value, std::less<>> globals_;
  std::map<uint64_t, std::string> functions_;
};

}  // namespace dbg

#endif  // SRC_DBG_SYMBOLS_H_
