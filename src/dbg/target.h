// The debugger target: raw memory access with transport-latency accounting.
//
// Every read models one debugger transport round trip (a GDB remote-protocol
// `m` packet) plus per-byte transfer cost, charged to a virtual clock. Two
// calibrated presets mirror the paper's Table 4 platforms.

#ifndef SRC_DBG_TARGET_H_
#define SRC_DBG_TARGET_H_

#include <cstdint>
#include <string>

#include "src/support/status.h"
#include "src/support/vclock.h"

namespace dbg {

// Abstracts "the machine being debugged" — implemented by the simulated
// kernel's arena.
class MemoryDomain {
 public:
  virtual ~MemoryDomain() = default;
  // Copies len bytes at addr into out; false if out of bounds.
  virtual bool ReadBytes(uint64_t addr, void* out, size_t len) const = 0;
};

// Per-access cost model for a debugger transport.
struct LatencyModel {
  std::string name;
  uint64_t per_access_ns = 0;  // round-trip cost of one memory request
  uint64_t per_byte_ns = 0;    // payload transfer cost

  // Localhost GDB-remote into QEMU (TCG): ~100 us per request round trip
  // (packet handling + TCG pause), calibrated so the KGDB/QEMU per-object
  // gap matches the paper's ~50x.
  static LatencyModel GdbQemu() { return {"GDB (QEMU)", 100'000, 15}; }
  // Serial KGDB on a Raspberry Pi 400: ~5 ms per request (the paper reports a
  // single uint64 fetch costing ~5 ms), slow per-byte transfer.
  static LatencyModel KgdbRpi400() { return {"KGDB (rpi-400)", 5'000'000, 2'000}; }
  // No accounting (unit tests).
  static LatencyModel Free() { return {"free", 0, 0}; }
};

class Target {
 public:
  Target(const MemoryDomain* memory, LatencyModel model)
      : memory_(memory), model_(std::move(model)) {}

  // --- raw reads (each charges one transport round trip) ---
  vl::Status ReadBytes(uint64_t addr, void* out, size_t len);
  vl::StatusOr<uint64_t> ReadUnsigned(uint64_t addr, size_t size);
  vl::StatusOr<int64_t> ReadSigned(uint64_t addr, size_t size);
  // Reads a NUL-terminated string of at most max_len bytes.
  vl::StatusOr<std::string> ReadCString(uint64_t addr, size_t max_len = 256);

  // --- accounting ---
  const vl::VirtualClock& clock() const { return clock_; }
  uint64_t reads() const { return reads_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetStats() {
    clock_.Reset();
    reads_ = 0;
    bytes_read_ = 0;
  }

  const LatencyModel& model() const { return model_; }
  void set_model(LatencyModel model) { model_ = std::move(model); }

 private:
  void Charge(size_t len) {
    clock_.AdvanceNanos(model_.per_access_ns + model_.per_byte_ns * len);
    reads_++;
    bytes_read_ += len;
  }

  const MemoryDomain* memory_;
  LatencyModel model_;
  vl::VirtualClock clock_;
  uint64_t reads_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace dbg

#endif  // SRC_DBG_TARGET_H_
