// The debugger target: raw memory access with transport-latency accounting.
//
// Every read models one debugger transport round trip (a GDB remote-protocol
// `m` packet) plus per-byte transfer cost, charged to a virtual clock. Two
// calibrated presets mirror the paper's Table 4 platforms.
//
// Charges are attributed to the latency model that incurred them, so a run
// that swaps models mid-flight (bench_table4 measures both transports on one
// target) can still report time per transport. When tracing is enabled
// (support/trace.h) each read additionally emits a `dbg.read` leaf span and
// feeds size/latency histograms plus per-struct-type counters; the disabled
// fast path is one relaxed atomic flag load.

#ifndef SRC_DBG_TARGET_H_
#define SRC_DBG_TARGET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/json.h"
#include "src/support/status.h"
#include "src/support/vclock.h"

namespace dbg {

// Result of one dirty-page query (MemoryDomain::DirtyPagesSince). Models
// QEMU's live-migration dirty log: the domain reports which pages changed
// after the caller's epoch so caching layers can invalidate block-wise
// instead of flushing everything (docs/caching.md#incremental-invalidation).
struct DirtyPageInfo {
  bool supported = false;      // domain has no dirty log → treat all as dirty
  uint64_t page_size = 0;      // dirty granule in bytes
  uint64_t pages_total = 0;    // pages in the tracked region
  uint64_t pages_scanned = 0;  // pages the domain hashed to answer (host work)
  std::vector<uint64_t> dirty_pages;  // base addresses of dirty pages
};

// Abstracts "the machine being debugged" — implemented by the simulated
// kernel's arena.
class MemoryDomain {
 public:
  virtual ~MemoryDomain() = default;
  // Copies len bytes at addr into out; false if out of bounds.
  virtual bool ReadBytes(uint64_t addr, void* out, size_t len) const = 0;
  // Monotonic mutation epoch of the underlying memory. Caching layers
  // (dbg::ReadSession) drop stale data whenever this moves. The default (a
  // constant) means "never changes"; the simulated kernel's arena overrides
  // it with the kernel's generation counter.
  virtual uint64_t generation() const { return 0; }
  // Dirty-page log: pages whose content changed after `since_generation`.
  // The default is unsupported — callers must assume every page is dirty.
  virtual DirtyPageInfo DirtyPagesSince(uint64_t since_generation) const {
    (void)since_generation;
    return {};
  }
};

// One span of a vectored read request (Target::ReadVector). The caller owns
// `out` (must hold `len` bytes); `ok` reports per-span success after the
// batch completes.
struct ReadSpan {
  uint64_t addr = 0;
  size_t len = 0;
  void* out = nullptr;
  bool ok = false;
};

// Per-access cost model for a debugger transport.
struct LatencyModel {
  std::string name;
  uint64_t per_access_ns = 0;  // round-trip cost of one memory request
  uint64_t per_byte_ns = 0;    // payload transfer cost
  // One dirty-log round trip (QEMU: a KVM_GET_DIRTY_LOG-style sync+fetch
  // behind a monitor command). The dirty bitmap payload is charged on top at
  // per_byte_ns, one bit per tracked page.
  uint64_t dirty_query_ns = 0;

  // Localhost GDB-remote into QEMU (TCG): ~100 us per request round trip
  // (packet handling + TCG pause), calibrated so the KGDB/QEMU per-object
  // gap matches the paper's ~50x.
  static LatencyModel GdbQemu() { return {"GDB (QEMU)", 100'000, 15, 100'000}; }
  // Serial KGDB on a Raspberry Pi 400: ~5 ms per request (the paper reports a
  // single uint64 fetch costing ~5 ms), slow per-byte transfer. KGDB has no
  // dirty log; the cost stands in for one extra serial round trip when a
  // harness layers page tracking on top.
  static LatencyModel KgdbRpi400() { return {"KGDB (rpi-400)", 5'000'000, 2'000, 5'000'000}; }
  // No accounting (unit tests).
  static LatencyModel Free() { return {"free", 0, 0, 0}; }
};

// Accumulated charges for one latency model (transport).
struct TransportStats {
  uint64_t charged_ns = 0;
  uint64_t reads = 0;
  uint64_t bytes = 0;

  // {"charged_ns", "reads", "bytes"} — see docs/observability.md#stats-schema.
  vl::Json ToJson() const;
};

class Target {
 public:
  Target(const MemoryDomain* memory, LatencyModel model);
  ~Target();

  Target(const Target&) = delete;
  Target& operator=(const Target&) = delete;

  // --- raw reads (each charges one transport round trip) ---
  vl::Status ReadBytes(uint64_t addr, void* out, size_t len);
  vl::StatusOr<uint64_t> ReadUnsigned(uint64_t addr, size_t size);
  vl::StatusOr<int64_t> ReadSigned(uint64_t addr, size_t size);
  // Reads a NUL-terminated string of at most max_len bytes.
  vl::StatusOr<std::string> ReadCString(uint64_t addr, size_t max_len = 256);

  // --- vectored read (one batched transport round trip) ---
  // Services every span against the memory domain in ONE transport request,
  // with GDB-remote-style batching semantics: the model's per_access_ns base
  // latency is charged once for the whole batch, plus per_byte_ns for every
  // successfully transferred byte. Per-span failures are tolerated (the
  // span's `ok` stays false and its bytes are skipped) — a batch that mixes
  // readable and unreadable memory still delivers the readable spans.
  // Returns the number of spans read successfully. An empty batch charges
  // nothing. Feeds the unconditional `read.vector.*` counters (batches,
  // spans, bytes, avoided_round_trips); ResetStats clears them.
  size_t ReadVector(std::vector<ReadSpan>& spans);

  // --- dirty-page log (incremental refresh) ---
  // Queries the memory domain for pages changed after `since_generation`.
  // Supported domains charge one dirty-log round trip
  // (model().dirty_query_ns) plus the bitmap payload (one bit per tracked
  // page at per_byte_ns) to the virtual clock; the advance lands inside
  // whatever trace span is open, so explain trees keep reconciling exactly.
  // Unsupported domains return {supported: false} and charge nothing.
  DirtyPageInfo DirtyPagesSince(uint64_t since_generation);

  // Accumulated dirty-log accounting for this target.
  struct DirtyStats {
    uint64_t queries = 0;
    uint64_t pages_scanned = 0;  // host-side pages hashed by the domain
    uint64_t pages_dirty = 0;    // dirty pages reported across all queries
    uint64_t charged_ns = 0;     // transport ns charged for the queries

    // {"queries", "pages_scanned", "pages_dirty", "charged_ns"}
    vl::Json ToJson() const;
  };
  // Snapshot (by value): safe to call while another thread is mid-refresh.
  DirtyStats dirty_stats() const;

  // --- accounting ---
  const vl::VirtualClock& clock() const { return clock_; }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  // Resets clock, totals, per-model attribution, AND the `dbg.read.*`
  // tracing metrics recorded via RecordRead — plus the `read.vector.*` batch
  // counters and the `plan.*` extraction-plan counters charged on this
  // clock — so back-to-back bench phases can't leak counts into each other. Safe to call while readers snapshot
  // stats concurrently (they see either pre- or post-reset values, never a
  // torn map).
  void ResetStats();

  // Charges attributed per latency-model name, snapshotted by value so a
  // concurrent ResetStats()/set_model() can't invalidate the result under the
  // caller. Charges since the last model swap are folded in lazily.
  std::map<std::string, TransportStats> per_model_stats() const;

  // {"charged_ns", "reads", "bytes", "model", "per_model": {name: {...}}}
  vl::Json StatsToJson() const;

  const LatencyModel& model() const { return model_; }
  // The memory domain's mutation epoch (see MemoryDomain::generation).
  uint64_t memory_generation() const { return memory_->generation(); }
  // Swapping the latency model closes out the outgoing model's charge window
  // (totals stay on the shared clock, per-model attribution stays correct).
  void set_model(LatencyModel model);

  // --- read attribution tag (per-struct-type counters when tracing) ---
  // The interpreter tags reads with the kernel type being instantiated; the
  // tag feeds `dbg.read.by_type.<tag>` counters on the tracing slow path.
  class TagScope {
   public:
    TagScope(Target* target, const char* tag) : target_(target), prev_(target->read_tag_) {
      target_->read_tag_ = tag;
    }
    ~TagScope() { target_->read_tag_ = prev_; }
    TagScope(const TagScope&) = delete;
    TagScope& operator=(const TagScope&) = delete;

   private:
    Target* target_;
    const char* prev_;
  };
  const char* read_tag() const { return read_tag_; }

 private:
  // Single-writer counters: reads are serialized by the target's owner (the
  // shard extraction mutex in vserve), so relaxed load+store compiles to a
  // plain add — no locked RMW — while concurrent stat snapshots stay
  // race-free (ThreadSanitizer-clean).
  void Charge(size_t len) {
    uint64_t cost = model_.per_access_ns + model_.per_byte_ns * len;
    clock_.AdvanceNanos(cost);
    reads_.store(reads_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    bytes_read_.store(bytes_read_.load(std::memory_order_relaxed) + len,
                      std::memory_order_relaxed);
    if (trace_flag_->load(std::memory_order_relaxed)) {
      RecordRead(len, cost);  // tracing slow path, out of line
    }
  }
  void RecordRead(size_t len, uint64_t cost);
  void RecordDirtyQuery(const DirtyPageInfo& info, uint64_t cost);
  // Attributes charges since the last swap/flush to the current model.
  // Caller must hold stats_mu_.
  void FlushModelStatsLocked() const;

  const MemoryDomain* memory_;
  LatencyModel model_;
  vl::VirtualClock clock_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> bytes_read_{0};
  DirtyStats dirty_stats_;  // guarded by stats_mu_ (cold path only)
  const std::atomic<bool>* trace_flag_;  // Tracer's enabled flag (cached)
  const char* read_tag_ = nullptr;

  // Guards dirty_stats_, by_model_, and the model bases so stat snapshots and
  // ResetStats() can interleave with an in-flight refresh.
  mutable std::mutex stats_mu_;

  // Per-model attribution: totals snapshotted at the last model swap; the
  // delta since then belongs to the current model. Zero cost on the read path.
  mutable std::map<std::string, TransportStats> by_model_;
  mutable uint64_t model_nanos_base_ = 0;
  mutable uint64_t model_reads_base_ = 0;
  mutable uint64_t model_bytes_base_ = 0;
};

}  // namespace dbg

#endif  // SRC_DBG_TARGET_H_
