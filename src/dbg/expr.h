// The C-expression engine behind ViewCL's ${...} escapes.
//
// Supports the C subset a kernel debugger needs: member access (./->), array
// indexing, pointer arithmetic, casts to registered types, the usual
// unary/binary/ternary operators, enumerator and symbol resolution, and calls
// into registered helper functions (the "GDB scripts exposing static inline
// kernel functions" of §4). `@name` tokens resolve through a caller-provided
// environment — that is how ViewCL binds @this and local variables.

#ifndef SRC_DBG_EXPR_H_
#define SRC_DBG_EXPR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/dbg/read_session.h"
#include "src/dbg/symbols.h"
#include "src/dbg/type.h"
#include "src/dbg/value.h"
#include "src/support/status.h"

namespace dbg {

class EvalContext;

// A helper ("kernel inline function" exposed to the debugger).
using HelperFn = std::function<vl::StatusOr<Value>(EvalContext*, std::vector<Value>&)>;

class HelperRegistry {
 public:
  void Register(std::string_view name, HelperFn fn) { fns_[std::string(name)] = std::move(fn); }
  const HelperFn* Find(std::string_view name) const {
    auto it = fns_.find(name);
    return it != fns_.end() ? &it->second : nullptr;
  }
  size_t size() const { return fns_.size(); }
  // Registered helper names, sorted — the static analyzer's identifier
  // universe for C-expression call heads.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(fns_.size());
    for (const auto& [name, fn] : fns_) {
      out.push_back(name);
    }
    return out;
  }

 private:
  std::map<std::string, HelperFn, std::less<>> fns_;
};

// Name -> value bindings for @refs (ViewCL scope variables).
using Environment = std::map<std::string, Value, std::less<>>;

// Everything an expression evaluation needs. Reads flow through a
// ReadSession (the block-cached front-end API); code that needs raw,
// per-request-accounted access goes to session()->target() explicitly.
class EvalContext {
 public:
  EvalContext(TypeRegistry* types, ReadSession* session, const SymbolTable* symbols,
              const HelperRegistry* helpers)
      : types_(types), session_(session), symbols_(symbols), helpers_(helpers) {}

  TypeRegistry* types() { return types_; }
  ReadSession* session() { return session_; }
  const SymbolTable* symbols() const { return symbols_; }
  const HelperRegistry* helpers() const { return helpers_; }

 private:
  TypeRegistry* types_;
  ReadSession* session_;
  const SymbolTable* symbols_;
  const HelperRegistry* helpers_;
};

// Parses and evaluates `expr` against the context. `env` may be nullptr.
vl::StatusOr<Value> EvalCExpression(EvalContext* ctx, std::string_view expr,
                                    const Environment* env);

// Parse-only check (used by ViewCL's front-end for early diagnostics).
vl::Status CheckCExpression(std::string_view expr);

}  // namespace dbg

#endif  // SRC_DBG_EXPR_H_
