// vflight: the per-request flight recorder behind vserve's observability.
//
// Every Refresh/SubmitRefresh is stamped with a monotonically assigned
// request id and virtual-clock lifecycle timestamps as it moves through the
// serving pipeline:
//
//   submitted -> admitted -> dequeued -> executing -> finished   (executed)
//   submitted -> admitted -> dequeued -> finished                (dedup hit)
//   submitted -> [rejected]                                      (queue full)
//   submitted -> admitted -> dequeued -> [rejected]              (over budget)
//
// Because every stamp is read from the owning shard's VirtualClock, the
// decomposition is deterministic: queue_ns is the virtual time the shard
// spent serving *other* requests while this one waited, and service_ns is
// exactly the transport time this request charged under the shard lock — so
// per-shard sums of service_ns reconcile against the shard's charged-ns
// (Server::ExportFlights asserts this per export).
//
// Completed records land in a bounded per-server ring (oldest shed first,
// counted). On top of the ring the recorder keeps per-session and per-shard
// queue/service/total histograms (p50/p90/p99 into `vctrl stats`), a rolling
// SLO window per shard (TimeSeriesRecorder, sampled 1-in-16 per shard to
// stay off the hot path), and budget-backed SLO ceilings
// ("queue"|"service"|"total") whose violations attach the offending flight
// record as the explain payload.
//
// The recorder is cheap when disabled — the serve data path checks one
// relaxed atomic flag and skips all stamping (guarded in bench_micro, the
// vtrace convention). All mutation happens under one leaf mutex, so worker
// threads finish flights concurrently with control-plane snapshots.

#ifndef SRC_SERVE_FLIGHT_H_
#define SRC_SERVE_FLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/budget.h"
#include "src/support/json.h"
#include "src/support/metrics.h"
#include "src/support/timeseries.h"

namespace vserve {

enum class FlightOutcome {
  kCold = 0,           // fresh extraction, no memo/render reuse
  kMemoReplay,         // executed, but >= 1 memoized subtree replayed
  kRenderReused,       // executed, render digest cache skipped the re-render
  kDedupHit,           // served from the shard result cache (see leader id)
  kAdmissionRejected,  // refused before execution (see admission_rule)
  kFailed,             // execution returned a non-OK status
};

const char* FlightOutcomeName(FlightOutcome outcome);

// True for outcomes that ran the extraction path under the shard lock (and
// therefore may have charged the shard clock — including failures, whose
// partial charges still count toward reconciliation).
inline bool FlightExecuted(FlightOutcome outcome) {
  return outcome == FlightOutcome::kCold || outcome == FlightOutcome::kMemoReplay ||
         outcome == FlightOutcome::kRenderReused || outcome == FlightOutcome::kFailed;
}

// One request's complete flight. All *_ns stamps are virtual-clock readings
// of the owning shard; stamps a lifecycle never reached stay 0.
struct FlightRecord {
  uint64_t request_id = 0;  // server-wide monotonic, assigned at submit
  int session_id = 0;
  std::string shard;
  int pane = 0;
  std::string backend;
  size_t worker = 0;  // worker slot that served it; 0 = inline

  FlightOutcome outcome = FlightOutcome::kCold;
  uint64_t leader_request_id = 0;  // kDedupHit: the extracting request's id
  std::string admission_rule;      // kAdmissionRejected: "max_queued" |
                                   // "session_budget_ns"
  uint64_t epoch = 0;              // kernel mutation epoch observed
  size_t boxes = 0;

  // Lifecycle stamps (monotone in the order below where present).
  uint64_t submitted_ns = 0;  // entered Submit
  uint64_t admitted_ns = 0;   // passed queue admission, enqueued
  uint64_t dequeued_ns = 0;   // picked up by a worker / the inline drain
  uint64_t executing_ns = 0;  // execution began under the shard lock
  uint64_t finished_ns = 0;   // result (or rejection/failure) produced

  // Transport ns charged during execution — the clock delta under the shard
  // lock, identical to ServeResult::refresh_ns. 0 for dedup hits and
  // rejections. Stored rather than derived so it excludes any virtual time
  // other shards' sessions burned between our stamps.
  uint64_t service_ns = 0;

  // Virtual time spent waiting in the scheduler queue (the shard was busy
  // serving others).
  uint64_t queue_ns() const { return dequeued_ns - submitted_ns; }
  uint64_t total_ns() const { return finished_ns - submitted_ns; }
  // Residue of total not explained by queueing or our own execution: shard
  // lock wait plus concurrent charges after dequeue.
  uint64_t stall_ns() const { return total_ns() - queue_ns() - service_ns; }

  vl::Json ToJson() const;
};

// Queue/service/total decomposition for one session or one shard. Only
// completed (non-rejected) flights enter the histograms; rejections are
// counted separately so they cannot drag the quantiles toward zero.
struct FlightStats {
  vl::Histogram queue_ns;
  vl::Histogram service_ns;
  vl::Histogram total_ns;
  uint64_t completed = 0;       // flights in the histograms
  uint64_t executed = 0;        // cold + memo-replay + render-reused + failed
  uint64_t dedup_hits = 0;
  uint64_t rejected = 0;        // admission-rejected (not in the histograms)
  uint64_t failed = 0;
  uint64_t service_sum_ns = 0;  // sum of service_ns (the reconciliation side)

  void Record(const FlightRecord& record);
  vl::Json ToJson() const;
};

// The per-server flight recorder. Thread-safe: Finish() is called from
// worker threads; snapshots and SLO configuration take the same leaf mutex.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 512) : capacity_(capacity) {
    window_.Enable();  // the rolling SLO window is part of the recorder
  }

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Assigns the next request id (monotonic from 1). Call only when enabled —
  // a request id of 0 means "not recorded".
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Completes a flight: ring append (oldest shed when full), per-session and
  // per-shard histogram update, rolling-window sample, SLO check.
  void Finish(FlightRecord record);

  // Ring snapshot, oldest first.
  std::vector<FlightRecord> Snapshot() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;  // total flights finished (ring + evicted)
  uint64_t dropped() const;   // flights evicted from the ring

  // Clears the ring, histograms, rolling windows, and SLO violations.
  // Configured SLO ceilings persist (mirroring BudgetRegistry semantics).
  void Clear();

  // --- SLO ceilings ---------------------------------------------------------
  // `kind` is "queue" | "service" | "total"; the ceiling applies to that
  // component of every completed flight. A breach records a BudgetRegistry
  // violation keyed "serve.slo.<kind>_ns" with the flight record attached.
  void SetSlo(const std::string& kind, uint64_t budget_ns);
  void RemoveSlo(const std::string& kind);
  void ClearSlo();  // ceilings and violations
  uint64_t slo_violations() const;
  vl::Json SloReportJson() const;
  std::string SloReportText() const;

  // --- decomposition snapshots ----------------------------------------------
  FlightStats SessionStats(int session_id) const;
  FlightStats ShardStats(const std::string& shard) const;
  // Sum of service_ns finished on `shard` (survives ring eviction).
  uint64_t shard_service_ns(const std::string& shard) const;

  // {"enabled", "capacity", "recorded", "dropped", "slo", "window",
  //  "flights": [... last_n records, oldest first]}
  vl::Json ToJson(size_t last_n) const;
  // The `vctrl flights` table: one row per record, newest last.
  std::string Table(size_t last_n) const;

 private:
  // Callers hold mu_.
  void CheckSloLocked(const FlightRecord& record);

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_request_id_{0};

  mutable std::mutex mu_;  // leaf lock: never acquire others while held
  size_t capacity_;
  std::deque<FlightRecord> ring_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  std::map<int, FlightStats> by_session_;
  std::map<std::string, FlightStats> by_shard_;
  vl::BudgetRegistry slo_;
  vl::TimeSeriesRecorder window_;
};

}  // namespace vserve

#endif  // SRC_SERVE_FLIGHT_H_
