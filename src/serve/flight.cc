#include "src/serve/flight.h"

#include <algorithm>
#include <utility>

#include "src/support/str.h"

namespace vserve {

namespace {

// The SLO budget key for a ceiling kind; empty for unknown kinds. Returns
// interned strings — this runs per completed flight (CheckSloLocked), where
// rebuilding the key would put three heap allocations on the serve hot path.
const std::string& SloKey(const std::string& kind) {
  static const std::string kQueue = "serve.slo.queue_ns";
  static const std::string kService = "serve.slo.service_ns";
  static const std::string kTotal = "serve.slo.total_ns";
  static const std::string kNone;
  if (kind == "queue") return kQueue;
  if (kind == "service") return kService;
  if (kind == "total") return kTotal;
  return kNone;
}

// One rolling-window sample per kWindowSampleEvery completed flights per
// shard (the first flight always samples). The window tracks decomposition
// drift, not individual requests — sampling keeps the per-flight cost of
// Finish() inside bench_micro's flight-overhead budget, since each sample
// builds a string-keyed map for the TimeSeriesRecorder.
constexpr uint64_t kWindowSampleEvery = 16;

}  // namespace

const char* FlightOutcomeName(FlightOutcome outcome) {
  switch (outcome) {
    case FlightOutcome::kCold:
      return "cold";
    case FlightOutcome::kMemoReplay:
      return "memo-replay";
    case FlightOutcome::kRenderReused:
      return "render-reused";
    case FlightOutcome::kDedupHit:
      return "dedup-hit";
    case FlightOutcome::kAdmissionRejected:
      return "admission-rejected";
    case FlightOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

vl::Json FlightRecord::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["request_id"] = vl::Json::Int(static_cast<int64_t>(request_id));
  j["session"] = vl::Json::Int(session_id);
  j["shard"] = vl::Json::Str(shard);
  j["pane"] = vl::Json::Int(pane);
  j["backend"] = vl::Json::Str(backend);
  j["worker"] = vl::Json::Int(static_cast<int64_t>(worker));
  j["outcome"] = vl::Json::Str(FlightOutcomeName(outcome));
  if (outcome == FlightOutcome::kDedupHit) {
    j["leader_request_id"] = vl::Json::Int(static_cast<int64_t>(leader_request_id));
  }
  if (outcome == FlightOutcome::kAdmissionRejected) {
    j["admission_rule"] = vl::Json::Str(admission_rule);
  }
  j["epoch"] = vl::Json::Int(static_cast<int64_t>(epoch));
  j["boxes"] = vl::Json::Int(static_cast<int64_t>(boxes));
  j["submitted_ns"] = vl::Json::Int(static_cast<int64_t>(submitted_ns));
  j["admitted_ns"] = vl::Json::Int(static_cast<int64_t>(admitted_ns));
  j["dequeued_ns"] = vl::Json::Int(static_cast<int64_t>(dequeued_ns));
  j["executing_ns"] = vl::Json::Int(static_cast<int64_t>(executing_ns));
  j["finished_ns"] = vl::Json::Int(static_cast<int64_t>(finished_ns));
  j["queue_ns"] = vl::Json::Int(static_cast<int64_t>(queue_ns()));
  j["service_ns"] = vl::Json::Int(static_cast<int64_t>(service_ns));
  j["total_ns"] = vl::Json::Int(static_cast<int64_t>(total_ns()));
  return j;
}

void FlightStats::Record(const FlightRecord& record) {
  if (record.outcome == FlightOutcome::kAdmissionRejected) {
    rejected++;
    return;
  }
  completed++;
  queue_ns.Record(record.queue_ns());
  service_ns.Record(record.service_ns);
  total_ns.Record(record.total_ns());
  service_sum_ns += record.service_ns;
  if (record.outcome == FlightOutcome::kDedupHit) {
    dedup_hits++;
  } else {
    executed++;
    if (record.outcome == FlightOutcome::kFailed) {
      failed++;
    }
  }
}

vl::Json FlightStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["completed"] = vl::Json::Int(static_cast<int64_t>(completed));
  j["executed"] = vl::Json::Int(static_cast<int64_t>(executed));
  j["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(dedup_hits));
  j["rejected"] = vl::Json::Int(static_cast<int64_t>(rejected));
  j["failed"] = vl::Json::Int(static_cast<int64_t>(failed));
  j["service_sum_ns"] = vl::Json::Int(static_cast<int64_t>(service_sum_ns));
  j["queue_ns"] = queue_ns.ToJson();
  j["service_ns"] = service_ns.ToJson();
  j["total_ns"] = total_ns.ToJson();
  return j;
}

void FlightRecorder::Finish(FlightRecord record) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  recorded_++;
  by_session_[record.session_id].Record(record);
  FlightStats& shard_stats = by_shard_[record.shard];
  shard_stats.Record(record);
  if (record.outcome != FlightOutcome::kAdmissionRejected) {
    if (shard_stats.completed % kWindowSampleEvery == 1) {
      window_.Record("serve.shard." + record.shard,
                     {{"queue_ns", static_cast<int64_t>(record.queue_ns())},
                      {"service_ns", static_cast<int64_t>(record.service_ns)},
                      {"total_ns", static_cast<int64_t>(record.total_ns())}});
    }
    CheckSloLocked(record);
  }
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_++;
  }
}

void FlightRecorder::CheckSloLocked(const FlightRecord& record) {
  if (!slo_.armed()) {
    return;
  }
  struct Component {
    const char* kind;
    uint64_t actual;
  };
  const Component components[] = {
      {"queue", record.queue_ns()},
      {"service", record.service_ns},
      {"total", record.total_ns()},
  };
  for (const Component& c : components) {
    const std::string& key = SloKey(c.kind);
    const uint64_t* budget = slo_.Find(key);
    if (budget != nullptr && c.actual > *budget) {
      slo_.RecordViolation(key, *budget, c.actual, record.epoch, record.ToJson());
    }
  }
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightRecord>(ring_.begin(), ring_.end());
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  recorded_ = 0;
  dropped_ = 0;
  by_session_.clear();
  by_shard_.clear();
  window_.Clear();
  slo_.ClearViolations();
}

void FlightRecorder::SetSlo(const std::string& kind, uint64_t budget_ns) {
  std::string key = SloKey(kind);
  if (key.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  slo_.Set(key, budget_ns);
}

void FlightRecorder::RemoveSlo(const std::string& kind) {
  std::string key = SloKey(kind);
  if (key.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  slo_.Remove(key);
}

void FlightRecorder::ClearSlo() {
  std::lock_guard<std::mutex> lock(mu_);
  slo_.ClearBudgets();
  slo_.ClearViolations();
}

uint64_t FlightRecorder::slo_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slo_.violations().size() + slo_.dropped();
}

vl::Json FlightRecorder::SloReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slo_.ReportJson();
}

std::string FlightRecorder::SloReportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slo_.ReportText();
}

FlightStats FlightRecorder::SessionStats(int session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_session_.find(session_id);
  return it != by_session_.end() ? it->second : FlightStats();
}

FlightStats FlightRecorder::ShardStats(const std::string& shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_shard_.find(shard);
  return it != by_shard_.end() ? it->second : FlightStats();
}

uint64_t FlightRecorder::shard_service_ns(const std::string& shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_shard_.find(shard);
  return it != by_shard_.end() ? it->second.service_sum_ns : 0;
}

vl::Json FlightRecorder::ToJson(size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  vl::Json j = vl::Json::Object();
  j["enabled"] = vl::Json::Bool(enabled());
  j["capacity"] = vl::Json::Int(static_cast<int64_t>(capacity_));
  j["recorded"] = vl::Json::Int(static_cast<int64_t>(recorded_));
  j["dropped"] = vl::Json::Int(static_cast<int64_t>(dropped_));
  j["slo"] = slo_.ReportJson();
  vl::Json window = vl::Json::Object();
  for (const std::string& series : window_.SeriesNames()) {
    window[series] = window_.SeriesToJson(series);
  }
  j["window"] = std::move(window);
  vl::Json flights = vl::Json::Array();
  size_t start = ring_.size() > last_n ? ring_.size() - last_n : 0;
  for (size_t i = start; i < ring_.size(); ++i) {
    flights.Append(ring_[i].ToJson());
  }
  j["flights"] = std::move(flights);
  return j;
}

std::string FlightRecorder::Table(size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = vl::StrFormat("%-6s %-4s %-10s %-4s %-18s %12s %12s %12s\n",
                                  "req", "sess", "shard", "pane", "outcome",
                                  "queue_ns", "service_ns", "total_ns");
  size_t start = ring_.size() > last_n ? ring_.size() - last_n : 0;
  for (size_t i = start; i < ring_.size(); ++i) {
    const FlightRecord& r = ring_[i];
    std::string outcome = FlightOutcomeName(r.outcome);
    if (r.outcome == FlightOutcome::kDedupHit) {
      outcome += vl::StrFormat("->%llu",
                               static_cast<unsigned long long>(r.leader_request_id));
    } else if (r.outcome == FlightOutcome::kAdmissionRejected) {
      outcome += ":" + r.admission_rule;
    }
    out += vl::StrFormat(
        "%-6llu %-4d %-10s %-4d %-18s %12llu %12llu %12llu\n",
        static_cast<unsigned long long>(r.request_id), r.session_id, r.shard.c_str(),
        r.pane, outcome.c_str(), static_cast<unsigned long long>(r.queue_ns()),
        static_cast<unsigned long long>(r.service_ns),
        static_cast<unsigned long long>(r.total_ns()));
  }
  if (ring_.empty()) {
    out += "(no flights recorded)\n";
  }
  return out;
}

}  // namespace vserve
