#include "src/serve/server.h"

#include <utility>

#include "src/analysis/lint.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/vision/figures.h"

namespace vserve {

namespace internal {

// One simulated kernel behind the front end, plus everything its sessions
// share: the debugger (whose ReadSession block cache is the shared extraction
// cache), the per-program ViewCL engines, and the refresh result cache.
struct Shard {
  explicit Shard(size_t cache_entries) : cache(cache_entries) {}

  std::string name;
  dbg::KernelDebugger* debugger = nullptr;  // owned_debugger.get() or borrowed
  std::unique_ptr<vkern::Kernel> kernel;        // BootShard shards only
  std::unique_ptr<vkern::Workload> workload;    // BootShard shards only
  std::unique_ptr<dbg::KernelDebugger> owned_debugger;

  // Serializes extraction on this shard and guards `engines`.
  std::mutex mu;
  // Shared per-program engines: Load once, Run per refresh, so interning and
  // memo snapshots persist across refreshes and across sessions.
  std::map<std::string, std::unique_ptr<viewcl::Interpreter>> engines;

  // Guards `cache` and `dedup_hits`. Lock order: mu before cache_mu.
  mutable std::mutex cache_mu;
  ResultCache cache;
  uint64_t dedup_hits = 0;

  uint64_t extractions = 0;  // guarded by mu
  size_t sessions = 0;       // guarded by the server mutex

  // Flight reconciliation baseline (guarded by mu): charged-ns attribution
  // starts at clock0 (the clock reading when the shard was registered or
  // stats were last reset), and control_ns accumulates virtual time charged
  // by control-plane replots (Plot / RunProgram / explain) — everything else
  // the clock advanced belongs to flights' service_ns.
  uint64_t clock0 = 0;
  uint64_t control_ns = 0;

  // Persistent vcheck engine (guarded by mu; lazily created on the first
  // Server::Sweep). Persistence is what makes incremental fleet sweeps work:
  // each rule's footprint/epoch from the last sweep survives here.
  std::unique_ptr<analysis::CheckEngine> checker;
};

}  // namespace internal

namespace {

vl::Status ValidateShardName(const std::string& name) {
  if (name.empty()) {
    return vl::InvalidArgumentError("shard name must be non-empty");
  }
  if (name.find('|') != std::string::npos ||
      name.find_first_of(" \t\n") != std::string::npos) {
    return vl::InvalidArgumentError(vl::StrFormat(
        "shard name '%s' may not contain '|' or whitespace", name.c_str()));
  }
  return vl::Status::Ok();
}

// Builds an extraction engine honoring the session's plan option. When plans
// are on, a linter-backed gate keeps statically diagnosed programs on the
// classic interpretation path (the speculative executor never sees them).
std::unique_ptr<viewcl::Interpreter> MakeEngine(dbg::KernelDebugger* debugger,
                                                const SessionOptions& options) {
  viewcl::InterpLimits limits;
  limits.compile_plans = options.compile_plans;
  auto engine = std::make_unique<viewcl::Interpreter>(debugger, limits);
  if (options.compile_plans) {
    viewcl::Interpreter* raw = engine.get();
    engine->SetPlanGate(
        [debugger, raw](const viewcl::Program& program, std::string_view source) {
          analysis::Linter linter(&debugger->types(), &debugger->symbols(),
                                  &debugger->helpers(), &raw->emoji());
          return linter.LintViewCl(program, source).diagnostics.errors() == 0;
        });
  }
  return engine;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ticket

bool Ticket::done() const {
  if (state_ == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

vl::StatusOr<ServeResult> Ticket::Wait() const {
  if (state_ == nullptr) {
    return vl::FailedPreconditionError("waiting on an empty ticket");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->result.has_value(); });
  return *state_->result;
}

// ---------------------------------------------------------------------------
// Session

Session::Session(Server* server, internal::Shard* shard, SessionOptions options, int id)
    : server_(server),
      shard_(shard),
      options_(std::move(options)),
      id_(id),
      debugger_(shard->debugger),
      panes_(shard->debugger) {
  panes_.AttachObservers(&recorder_, &budgets_);
  panes_.set_render_cache_enabled(options_.render_cache);
}

Session::~Session() { server_->CancelSession(this); }

const std::string& Session::shard_name() const { return shard_->name; }

viewcl::Interpreter* Session::classic_engine() {
  if (classic_engine_ == nullptr) {
    classic_engine_ = MakeEngine(debugger_, options_);
  }
  return classic_engine_.get();
}

viewcl::EmojiRegistry& Session::emoji() { return classic_engine()->emoji(); }

vl::StatusOr<Session::PlotResult> Session::Plot(int pane, const std::string& program) {
  std::unique_ptr<viewcl::ViewGraph> graph;
  {
    std::lock_guard<std::mutex> lock(shard_->mu);
    // Control-plane charge: attributed to the shard's control_ns so flight
    // reconciliation can tell it apart from serving time. Accounted even on
    // failure — a failed extraction still advanced the clock.
    uint64_t before = debugger_->target().clock().nanos();
    auto replotted = server_->ReplotLocked(this, program);
    shard_->control_ns += debugger_->target().clock().nanos() - before;
    if (!replotted.ok()) {
      return replotted.status();
    }
    graph = std::move(*replotted);
  }
  PlotResult out;
  out.boxes = graph->size();
  out.warnings = last_warnings_;
  VL_RETURN_IF_ERROR(panes_.SetGraph(pane, std::move(graph), program));
  return out;
}

vl::Status Session::Apply(int pane, std::string_view viewql) {
  return panes_.ApplyViewQl(pane, viewql);
}

vl::StatusOr<int> Session::Split(int pane, char direction) {
  return panes_.Split(pane, direction);
}

std::string Session::Render(int pane, const vision::RenderOptions& options,
                            std::string_view backend) {
  return panes_.RenderPane(pane, options, backend);
}

vl::StatusOr<ServeResult> Session::Refresh(int pane, const std::string& backend,
                                           const vision::RenderOptions& options) {
  VL_ASSIGN_OR_RETURN(Ticket ticket, SubmitRefresh(pane, backend, options));
  return ticket.Wait();
}

vl::StatusOr<Ticket> Session::SubmitRefresh(int pane, const std::string& backend,
                                            const vision::RenderOptions& options) {
  return server_->Submit(this, pane, backend, options);
}

vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> Session::RunProgram(
    const std::string& program, std::vector<std::string>* warnings) {
  std::lock_guard<std::mutex> lock(shard_->mu);
  uint64_t before = debugger_->target().clock().nanos();
  auto result = server_->ReplotLocked(this, program);
  shard_->control_ns += debugger_->target().clock().nanos() - before;
  if (warnings != nullptr) {
    warnings->insert(warnings->end(), last_warnings_.begin(), last_warnings_.end());
  }
  return result;
}

vision::PaneManager::ReplotFn Session::MakeReplotFn() {
  return [this](const std::string& program) {
    std::lock_guard<std::mutex> lock(shard_->mu);
    uint64_t before = debugger_->target().clock().nanos();
    auto result = server_->ReplotLocked(this, program);
    shard_->control_ns += debugger_->target().clock().nanos() - before;
    return result;
  };
}

vl::Json Session::StatsToJson() const {
  vl::Json j = vl::Json::Object();
  j["id"] = vl::Json::Int(id_);
  j["shard"] = vl::Json::Str(shard_->name);
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns()));
  j["requests"] = vl::Json::Int(static_cast<int64_t>(requests()));
  j["executed"] = vl::Json::Int(static_cast<int64_t>(executed()));
  j["deduped"] = vl::Json::Int(static_cast<int64_t>(deduped()));
  j["rejected"] = vl::Json::Int(static_cast<int64_t>(rejected()));
  j["flights"] = server_->flights().SessionStats(id_).ToJson();
  return j;
}

// ---------------------------------------------------------------------------
// Client

vl::StatusOr<Client> Client::Connect(Server* server, SessionOptions options) {
  return server->Connect(std::move(options));
}

// ---------------------------------------------------------------------------
// Server

Server::Server(ServerConfig config) : config_(config), flights_(config.flight_records) {
  if (!config_.flight_recorder) {
    flights_.Disable();
  }
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    // Worker slots are 1-based in flight records; 0 means inline execution.
    workers_.emplace_back(&Server::WorkerLoop, this, i + 1);
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  std::deque<Request> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    for (Request& req : leftovers) {
      req.session->queued_--;
    }
  }
  for (Request& req : leftovers) {
    Fulfill(req.ticket, vl::FailedPreconditionError("server destroyed"));
  }
}

vl::Status Server::AddShard(const std::string& name, dbg::KernelDebugger* debugger) {
  VL_RETURN_IF_ERROR(ValidateShardName(name));
  if (debugger == nullptr) {
    return vl::InvalidArgumentError("shard debugger must be non-null");
  }
  auto shard = std::make_unique<internal::Shard>(config_.result_cache_entries);
  shard->name = name;
  shard->debugger = debugger;
  // An adopted debugger may already have charged time; flights only account
  // for what happens from registration on.
  shard->clock0 = debugger->target().clock().nanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (FindShard(name) != nullptr) {
    return vl::FailedPreconditionError(
        vl::StrFormat("shard '%s' already registered", name.c_str()));
  }
  shards_.push_back(std::move(shard));
  return vl::Status::Ok();
}

vl::Status Server::BootShard(const std::string& name, const dbg::LatencyModel& model,
                             int workload_steps) {
  VL_RETURN_IF_ERROR(ValidateShardName(name));
  auto shard = std::make_unique<internal::Shard>(config_.result_cache_entries);
  shard->name = name;
  shard->kernel = std::make_unique<vkern::Kernel>();
  vkern::WorkloadConfig workload_config;
  workload_config.steps = workload_steps;
  shard->workload = std::make_unique<vkern::Workload>(shard->kernel.get(), workload_config);
  shard->workload->Run();
  shard->owned_debugger = std::make_unique<dbg::KernelDebugger>(shard->kernel.get(), model);
  shard->debugger = shard->owned_debugger.get();
  vision::RegisterFigureSymbols(shard->debugger, shard->workload.get());
  shard->clock0 = shard->debugger->target().clock().nanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (FindShard(name) != nullptr) {
    return vl::FailedPreconditionError(
        vl::StrFormat("shard '%s' already registered", name.c_str()));
  }
  shards_.push_back(std::move(shard));
  return vl::Status::Ok();
}

internal::Shard* Server::FindShard(const std::string& name) const {
  for (const auto& shard : shards_) {
    if (shard->name == name) {
      return shard.get();
    }
  }
  return nullptr;
}

size_t Server::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

dbg::KernelDebugger* Server::shard_debugger(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->debugger : nullptr;
}

vkern::Kernel* Server::shard_kernel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->kernel.get() : nullptr;
}

vkern::Workload* Server::shard_workload(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->workload.get() : nullptr;
}

vl::StatusOr<Client> Server::Connect(SessionOptions options) {
  vl::DiagnosticList diags = options.Validate();
  if (diags.errors() > 0) {
    return vl::InvalidArgumentError("invalid session options:\n" + options.ValidationText());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.empty()) {
    return vl::FailedPreconditionError("no shards registered; AddShard/BootShard first");
  }
  internal::Shard* shard = nullptr;
  if (!options.shard.empty()) {
    shard = FindShard(options.shard);
    if (shard == nullptr) {
      return vl::NotFoundError(vl::StrFormat("no such shard '%s'", options.shard.c_str()));
    }
  } else {
    shard = shards_[round_robin_ % shards_.size()].get();
    round_robin_++;
  }
  // Sessions sharing a shard share its ReadSession, so their cache configs
  // must agree. An empty shard adopts the newcomer's config; an occupied one
  // refuses a mismatch (reconfiguring would flush caches out from under the
  // sessions relying on them).
  dbg::CacheConfig want = options.ToCacheConfig();
  if (!SameCacheConfig(shard->debugger->session().config(), want)) {
    if (shard->sessions > 0) {
      return vl::FailedPreconditionError(vl::StrFormat(
          "cache config conflicts with %zu active session(s) on shard '%s'; "
          "use matching SessionOptions or another shard",
          shard->sessions, shard->name.c_str()));
    }
    // Reconfiguring reads through the target (cache re-prime), so it charges
    // the shard clock: attribute it as control-plane work, like Plot, so
    // flight reconciliation stays exact.
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    uint64_t before = shard->debugger->target().clock().nanos();
    shard->debugger->session().Reconfigure(want);
    shard->control_ns += shard->debugger->target().clock().nanos() - before;
  }
  std::unique_ptr<Session> session(
      new Session(this, shard, std::move(options), next_session_id_++));
  sessions_.push_back(session.get());
  shard->sessions++;
  return Client(std::move(session));
}

void Server::CancelSession(Session* session) {
  std::vector<std::shared_ptr<Ticket::State>> orphans;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->session == session) {
        orphans.push_back(std::move(it->ticket));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    session->queued_ = 0;
    drained_cv_.wait(lock, [&] { return !session->in_flight_; });
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (*it == session) {
        sessions_.erase(it);
        break;
      }
    }
    session->shard_->sessions--;
  }
  for (const auto& ticket : orphans) {
    Fulfill(ticket, vl::FailedPreconditionError("session closed"));
  }
}

// ---------------------------------------------------------------------------
// Scheduler

void Server::Fulfill(const std::shared_ptr<Ticket::State>& ticket,
                     vl::StatusOr<ServeResult> result) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->result.emplace(std::move(result));
  }
  ticket->cv.notify_all();
}

std::deque<Server::Request>::iterator Server::FirstEligibleLocked() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!it->session->in_flight_) {
      return it;
    }
  }
  return queue_.end();
}

vl::StatusOr<Ticket> Server::Submit(Session* session, int pane, const std::string& backend,
                                    const vision::RenderOptions& options) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  Request req{session, pane, backend, options, ticket.state_};
  if (flights_.enabled()) {
    req.request_id = flights_.NextRequestId();
    req.submitted_ns = session->debugger_->target().clock().nanos();
  }
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return vl::FailedPreconditionError("server is shutting down");
    }
    if (session->queued_ >= session->options_.max_queued) {
      session->rejected_.fetch_add(1, std::memory_order_relaxed);
      if (req.request_id != 0) {
        FlightRecord flight;
        flight.request_id = req.request_id;
        flight.session_id = session->id_;
        flight.shard = session->shard_->name;
        flight.pane = pane;
        flight.backend = backend;
        flight.outcome = FlightOutcome::kAdmissionRejected;
        flight.admission_rule = "max_queued";
        flight.epoch = session->debugger_->kernel()->generation();
        flight.submitted_ns = req.submitted_ns;
        // Never admitted: the remaining stamps collapse onto submit.
        flight.dequeued_ns = req.submitted_ns;
        flight.finished_ns = session->debugger_->target().clock().nanos();
        flights_.Finish(std::move(flight));
      }
      return vl::ResourceExhaustedError(vl::StrFormat(
          "session %d refresh queue full (%zu queued, max_queued=%zu)", session->id_,
          session->queued_, session->options_.max_queued));
    }
    req.admitted_ns = req.submitted_ns;
    queue_.push_back(std::move(req));
    session->queued_++;
    drain = workers_.empty() && !paused_;
  }
  work_cv_.notify_one();
  if (drain) {
    DrainInline();
  }
  return ticket;
}

void Server::WorkerLoop(size_t worker) {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return stop_ || (!paused_ && FirstEligibleLocked() != queue_.end());
    });
    if (stop_) {
      return;
    }
    auto it = FirstEligibleLocked();
    Request req = std::move(*it);
    queue_.erase(it);
    req.session->queued_--;
    req.session->in_flight_ = true;
    active_++;
    lock.unlock();

    if (req.request_id != 0) {
      // Lock-free clock read: queue_ns ends here.
      req.dequeued_ns = req.session->debugger_->target().clock().nanos();
      req.worker = worker;
    }
    vl::StatusOr<ServeResult> result = ExecuteRefresh(req);
    Fulfill(req.ticket, std::move(result));

    lock.lock();
    req.session->in_flight_ = false;
    active_--;
    drained_cv_.notify_all();
    // The session's next queued request (if any) just became eligible.
    work_cv_.notify_all();
  }
}

void Server::DrainInline() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    auto it = FirstEligibleLocked();
    if (it == queue_.end()) {
      // Every queued request belongs to a session another thread is serving;
      // wait for one to finish.
      drained_cv_.wait(lock);
      continue;
    }
    Request req = std::move(*it);
    queue_.erase(it);
    req.session->queued_--;
    req.session->in_flight_ = true;
    active_++;
    lock.unlock();

    if (req.request_id != 0) {
      req.dequeued_ns = req.session->debugger_->target().clock().nanos();
      req.worker = 0;  // inline execution
    }
    vl::StatusOr<ServeResult> result = ExecuteRefresh(req);
    Fulfill(req.ticket, std::move(result));

    lock.lock();
    req.session->in_flight_ = false;
    active_--;
    drained_cv_.notify_all();
  }
}

void Server::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Server::Resume() {
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    drain = workers_.empty();
  }
  work_cv_.notify_all();
  if (drain) {
    DrainInline();
  }
}

void Server::Drain() {
  if (workers_.empty()) {
    DrainInline();
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

// ---------------------------------------------------------------------------
// The refresh data path

std::string Server::DedupKey(Session* session, int pane, const std::string& backend,
                             const vision::RenderOptions& options) const {
  std::string program = session->panes_.program_text(pane);
  if (program.empty()) {
    return "";  // nothing to coalesce (empty or secondary pane)
  }
  std::string key = vl::StrFormat(
      "%llu|%s|%d%d%d|se%d|",
      static_cast<unsigned long long>(session->debugger_->kernel()->generation()),
      backend.c_str(), options.show_addresses ? 1 : 0, options.show_attributes ? 1 : 0,
      options.max_container_preview, session->options_.shared_engines ? 1 : 0);
  key += program;
  key += '\x1e';
  const std::vector<std::string>* history = session->panes_.viewql_history(pane);
  if (history != nullptr) {
    for (const std::string& entry : *history) {
      key += entry;
      key += '\x1f';
    }
  }
  return key;
}

ServeResult Server::ServeFromCacheLocked(Session* session, internal::Shard* shard,
                                         const ServeResult& hit, uint64_t request_id) {
  ServeResult out = hit;
  out.deduped = true;
  out.refresh_ns = 0;  // the whole point: the duplicate is charged nothing
  out.violations.clear();
  out.sequence = NextSequence();
  // The cached result carries the extracting request's id — that request is
  // this one's dedup leader.
  out.leader_request_id = hit.request_id;
  out.request_id = request_id;
  shard->dedup_hits++;
  session->deduped_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> Server::ReplotLocked(
    Session* session, const std::string& program) {
  session->last_warnings_.clear();
  if (!session->options_.shared_engines) {
    // Classic semantics: one private interpreter that re-loads the program on
    // every replot (exactly the pre-vserve DebuggerShell behavior, including
    // binding accumulation across panes).
    viewcl::Interpreter* engine = session->classic_engine();
    uint64_t memo_before = engine->memo_replays();
    auto result = engine->RunProgram(program);
    session->last_warnings_ = engine->warnings();
    session->last_memo_replays_ = engine->memo_replays() - memo_before;
    return result;
  }
  internal::Shard* shard = session->shard_;
  std::unique_ptr<viewcl::Interpreter>& slot = shard->engines[program];
  if (slot == nullptr) {
    // The first session to plot a program fixes the shared engine's plan
    // setting (sessions already agree on the cache config to share a shard).
    slot = MakeEngine(shard->debugger, session->options_);
    vl::Status loaded = slot->Load(program);
    if (!loaded.ok()) {
      shard->engines.erase(program);
      return loaded;
    }
  }
  // Load() once, Run() per refresh: the engine's interning and memo
  // snapshots persist across refreshes and across every session plotting
  // this program.
  uint64_t memo_before = slot->memo_replays();
  auto result = slot->Run();
  session->last_warnings_ = slot->warnings();
  session->last_memo_replays_ = slot->memo_replays() - memo_before;
  return result;
}

vl::StatusOr<ServeResult> Server::ExecuteRefresh(const Request& req) {
  Session* session = req.session;
  const int pane = req.pane;
  const std::string& backend = req.backend;
  const vision::RenderOptions& options = req.options;
  session->requests_.fetch_add(1, std::memory_order_relaxed);

  // The flight rides with the request; every exit below completes it.
  const bool record = req.request_id != 0 && flights_.enabled();
  FlightRecord flight;
  if (record) {
    flight.request_id = req.request_id;
    flight.session_id = session->id_;
    flight.shard = session->shard_->name;
    flight.pane = pane;
    flight.backend = backend;
    flight.worker = req.worker;
    flight.submitted_ns = req.submitted_ns;
    flight.admitted_ns = req.admitted_ns;
    flight.dequeued_ns = req.dequeued_ns;
    flight.epoch = session->debugger_->kernel()->generation();
  }
  auto clock_now = [session] { return session->debugger_->target().clock().nanos(); };

  // Admission: a session over its latency budget gets rejected up front.
  uint64_t budget = session->options_.session_budget_ns;
  if (budget > 0 && session->charged_ns() >= budget) {
    session->rejected_.fetch_add(1, std::memory_order_relaxed);
    vl::Json explain = vl::Json::Object();
    explain["reason"] = vl::Json::Str("admission");
    explain["pane"] = vl::Json::Int(pane);
    explain["charged_ns"] = vl::Json::Int(static_cast<int64_t>(session->charged_ns()));
    session->budgets_.RecordViolation(
        vl::StrFormat("serve.session.%d", session->id_), budget, session->charged_ns(),
        session->debugger_->kernel()->generation(), std::move(explain));
    if (record) {
      flight.outcome = FlightOutcome::kAdmissionRejected;
      flight.admission_rule = "session_budget_ns";
      flight.finished_ns = clock_now();
      flights_.Finish(std::move(flight));
    }
    return vl::ResourceExhaustedError(vl::StrFormat(
        "session %d over latency budget (%llu ns charged, budget %llu ns); "
        "refresh rejected",
        session->id_, static_cast<unsigned long long>(session->charged_ns()),
        static_cast<unsigned long long>(budget)));
  }

  internal::Shard* shard = session->shard_;
  std::string key;
  if (session->options_.coalesce) {
    key = DedupKey(session, pane, backend, options);
    if (!key.empty()) {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      if (const ServeResult* hit = shard->cache.Find(key)) {
        ServeResult out = ServeFromCacheLocked(session, shard, *hit, req.request_id);
        if (record) {
          flight.outcome = FlightOutcome::kDedupHit;
          flight.leader_request_id = out.leader_request_id;
          flight.epoch = out.epoch;
          flight.boxes = out.boxes;
          flight.finished_ns = clock_now();
          flights_.Finish(std::move(flight));
        }
        return out;
      }
    }
  }

  std::lock_guard<std::mutex> lock(shard->mu);
  if (!key.empty()) {
    // Re-check: a concurrent duplicate may have extracted while we waited on
    // the shard — this re-check IS the request coalescing.
    std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
    if (const ServeResult* hit = shard->cache.Find(key)) {
      ServeResult out = ServeFromCacheLocked(session, shard, *hit, req.request_id);
      if (record) {
        flight.outcome = FlightOutcome::kDedupHit;
        flight.leader_request_id = out.leader_request_id;
        flight.epoch = out.epoch;
        flight.boxes = out.boxes;
        flight.finished_ns = clock_now();
        flights_.Finish(std::move(flight));
      }
      return out;
    }
  }

  uint64_t before = clock_now();
  if (record) {
    flight.executing_ns = before;
  }
  session->last_memo_replays_ = 0;  // set by ReplotLocked under this lock
  vision::PaneManager::ReplotFn replot = [this, session](const std::string& program) {
    return ReplotLocked(session, program);
  };
  auto refreshed = session->panes_.RefreshPane(pane, replot);
  if (!refreshed.ok()) {
    if (record) {
      // A failed refresh may still have charged the clock before erroring —
      // count the partial charge so reconciliation stays exact.
      flight.outcome = FlightOutcome::kFailed;
      flight.finished_ns = clock_now();
      flight.service_ns = flight.finished_ns - before;
      flights_.Finish(std::move(flight));
    }
    return refreshed.status();
  }
  ServeResult out;
  out.boxes = refreshed->boxes;
  out.epoch = refreshed->epoch;
  out.render_reused = refreshed->render_reused;
  out.violations = refreshed->violations;
  if (session->options_.coalesce) {
    // Capture the render so a coalesced duplicate can be served bytes, not
    // just accounting. Classic sessions skip this to keep their render
    // digest counters exactly as the pre-vserve shell left them.
    out.render = session->panes_.RenderPane(pane, options, backend);
  }
  uint64_t after = clock_now();
  out.refresh_ns = after - before;
  out.sequence = NextSequence();
  out.request_id = req.request_id;

  session->charged_ns_.fetch_add(out.refresh_ns, std::memory_order_relaxed);
  session->executed_.fetch_add(1, std::memory_order_relaxed);
  shard->extractions++;

  if (!key.empty()) {
    std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
    shard->cache.Insert(key, out);
  }
  if (session->recorder_.enabled()) {
    session->recorder_.Record(
        "serve.refresh",
        {{"pane", pane},
         {"refresh_ns", static_cast<int64_t>(out.refresh_ns)},
         {"charged_ns", static_cast<int64_t>(session->charged_ns())},
         {"deduped", 0}});
  }
  if (record) {
    flight.outcome = out.render_reused ? FlightOutcome::kRenderReused
                     : session->last_memo_replays_ > 0 ? FlightOutcome::kMemoReplay
                                                       : FlightOutcome::kCold;
    flight.epoch = out.epoch;
    flight.boxes = out.boxes;
    flight.service_ns = out.refresh_ns;
    flight.finished_ns = after;
    flights_.Finish(std::move(flight));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stats

vl::Json Server::StatsToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  vl::Json j = vl::Json::Object();
  j["sessions"] = vl::Json::Int(static_cast<int64_t>(sessions_.size()));
  j["shard_count"] = vl::Json::Int(static_cast<int64_t>(shards_.size()));
  j["workers"] = vl::Json::Int(static_cast<int64_t>(workers_.size()));
  j["queued"] = vl::Json::Int(static_cast<int64_t>(queue_.size()));
  vl::Json shards = vl::Json::Object();
  for (const auto& shard : shards_) {
    vl::Json s = vl::Json::Object();
    s["sessions"] = vl::Json::Int(static_cast<int64_t>(shard->sessions));
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      s["extractions"] = vl::Json::Int(static_cast<int64_t>(shard->extractions));
      s["engines"] = vl::Json::Int(static_cast<int64_t>(shard->engines.size()));
      s["control_ns"] = vl::Json::Int(static_cast<int64_t>(shard->control_ns));
    }
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      s["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(shard->dedup_hits));
      s["result_cache"] = shard->cache.StatsToJson();
    }
    s["target_charged_ns"] =
        vl::Json::Int(static_cast<int64_t>(shard->debugger->target().clock().nanos()));
    s["flights"] = flights_.ShardStats(shard->name).ToJson();
    shards[shard->name] = std::move(s);
  }
  j["shards"] = std::move(shards);
  vl::Json fl = vl::Json::Object();
  fl["enabled"] = vl::Json::Bool(flights_.enabled());
  fl["capacity"] = vl::Json::Int(static_cast<int64_t>(flights_.capacity()));
  fl["recorded"] = vl::Json::Int(static_cast<int64_t>(flights_.recorded()));
  fl["dropped"] = vl::Json::Int(static_cast<int64_t>(flights_.dropped()));
  fl["slo_violations"] = vl::Json::Int(static_cast<int64_t>(flights_.slo_violations()));
  j["flights"] = std::move(fl);
  vl::Json sessions = vl::Json::Array();
  for (const Session* session : sessions_) {
    sessions.Append(session->StatsToJson());
  }
  j["per_session"] = std::move(sessions);
  // Extraction-plan accounting (unconditional counter families; fleet-wide
  // because every shard's engines feed the same registry).
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  auto counter = [&metrics](const char* name) {
    return vl::Json::Int(static_cast<int64_t>(metrics.GetCounter(name)->value()));
  };
  vl::Json plan = vl::Json::Object();
  plan["compiles"] = counter("plan.compiles");
  plan["cache_hits"] = counter("plan.cache_hits");
  plan["executions"] = counter("plan.executions");
  plan["wavefronts"] = counter("plan.wavefronts");
  plan["batches"] = counter("plan.batches");
  plan["batched_reads"] = counter("read.vector.spans");
  plan["avoided_round_trips"] = counter("read.vector.avoided_round_trips");
  plan["parallel_wavefronts"] = counter("plan.parallel_wavefronts");
  plan["steered_skips"] = counter("plan.steered_skips");
  plan["soft_errors"] = counter("plan.soft_errors");
  j["plan"] = std::move(plan);
  return j;
}

vl::Json Server::PlanJson(Session* session, const std::string& program) {
  internal::Shard* shard = session->shard_;
  std::lock_guard<std::mutex> lock(shard->mu);
  if (!session->options_.shared_engines) {
    viewcl::Interpreter* engine = session->classic_engine_.get();
    return engine != nullptr ? engine->PlanToJson() : vl::Json::Null();
  }
  auto it = shard->engines.find(program);
  if (it == shard->engines.end()) {
    return vl::Json::Null();
  }
  return it->second->PlanToJson();
}

void Server::PublishMetrics() const {
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  std::lock_guard<std::mutex> lock(mu_);
  metrics.GetGauge("serve.sessions")->Set(static_cast<int64_t>(sessions_.size()));
  metrics.GetGauge("serve.queued")->Set(static_cast<int64_t>(queue_.size()));
  metrics.GetGauge("serve.flights.recorded")
      ->Set(static_cast<int64_t>(flights_.recorded()));
  metrics.GetGauge("serve.flights.dropped")
      ->Set(static_cast<int64_t>(flights_.dropped()));
  metrics.GetGauge("serve.flights.slo_violations")
      ->Set(static_cast<int64_t>(flights_.slo_violations()));
  metrics.GetGauge("check.fleet.sweeps")
      ->Set(static_cast<int64_t>(check_sweeps_.load(std::memory_order_relaxed)));
  metrics.GetGauge("check.fleet.violations")
      ->Set(static_cast<int64_t>(check_violations_.load(std::memory_order_relaxed)));
  metrics.GetGauge("check.fleet.rules_run")
      ->Set(static_cast<int64_t>(check_rules_run_.load(std::memory_order_relaxed)));
  metrics.GetGauge("check.fleet.rules_skipped")
      ->Set(static_cast<int64_t>(check_rules_skipped_.load(std::memory_order_relaxed)));
  metrics.GetGauge("check.fleet.charged_ns")
      ->Set(static_cast<int64_t>(check_charged_ns_.load(std::memory_order_relaxed)));
  // Plan gauges (vl_plan_* in the Prometheus export): snapshots of the
  // unconditional plan.* / read.vector.* counter families.
  auto counter_gauge = [&metrics](const char* gauge, const char* counter) {
    metrics.GetGauge(gauge)->Set(
        static_cast<int64_t>(metrics.GetCounter(counter)->value()));
  };
  counter_gauge("plan.fleet.compiles", "plan.compiles");
  counter_gauge("plan.fleet.cache_hits", "plan.cache_hits");
  counter_gauge("plan.fleet.wavefronts", "plan.wavefronts");
  counter_gauge("plan.fleet.batches", "plan.batches");
  counter_gauge("plan.fleet.batched_reads", "read.vector.spans");
  counter_gauge("plan.fleet.avoided_round_trips", "read.vector.avoided_round_trips");
  for (const auto& shard : shards_) {
    const std::string prefix = "serve.shard." + shard->name;
    metrics.GetGauge(prefix + ".sessions")->Set(static_cast<int64_t>(shard->sessions));
    size_t depth = 0;
    size_t inflight = 0;
    for (const Request& request : queue_) {
      if (request.session->shard_ == shard.get()) {
        depth++;
      }
    }
    for (const Session* session : sessions_) {
      if (session->shard_ == shard.get() && session->in_flight_) {
        inflight++;
      }
    }
    metrics.GetGauge(prefix + ".queue_depth")->Set(static_cast<int64_t>(depth));
    metrics.GetGauge(prefix + ".inflight")->Set(static_cast<int64_t>(inflight));
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      metrics.GetGauge(prefix + ".extractions")
          ->Set(static_cast<int64_t>(shard->extractions));
    }
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      metrics.GetGauge(prefix + ".dedup_hits")
          ->Set(static_cast<int64_t>(shard->dedup_hits));
    }
    FlightStats stats = flights_.ShardStats(shard->name);
    metrics.GetGauge(prefix + ".p99_service_ns")
        ->Set(static_cast<int64_t>(stats.service_ns.ApproxQuantile(0.99)));
    metrics.GetGauge(prefix + ".p99_queue_ns")
        ->Set(static_cast<int64_t>(stats.queue_ns.ApproxQuantile(0.99)));
  }
  for (const Session* session : sessions_) {
    const std::string prefix = vl::StrFormat("serve.session.%d", session->id());
    metrics.GetGauge(prefix + ".charged_ns")
        ->Set(static_cast<int64_t>(session->charged_ns()));
    metrics.GetGauge(prefix + ".executed")->Set(static_cast<int64_t>(session->executed()));
    metrics.GetGauge(prefix + ".deduped")->Set(static_cast<int64_t>(session->deduped()));
    metrics.GetGauge(prefix + ".rejected")->Set(static_cast<int64_t>(session->rejected()));
  }
}

// ---------------------------------------------------------------------------
// Flight export, fleet snapshot, reset

vl::Json Server::ExportFlights() const {
  // Phase 1: shard charged-ns snapshot (under the server + shard locks).
  struct ShardCharge {
    int pid = 0;
    uint64_t charged_ns = 0;
    uint64_t control_ns = 0;
  };
  std::map<std::string, ShardCharge> charges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int index = 0;
    for (const auto& shard : shards_) {
      ShardCharge charge;
      // Tracks get pids disjoint from the span tracer's pid 1, so a merged
      // `vctrl export chrome` renders flights as separate processes.
      charge.pid = 100 + index++;
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      charge.charged_ns = shard->debugger->target().clock().nanos() - shard->clock0;
      charge.control_ns = shard->control_ns;
      charges[shard->name] = charge;
    }
  }
  // Phase 2: flights (recorder leaf lock only; no server locks held).
  std::vector<FlightRecord> flights = flights_.Snapshot();

  vl::Json root = vl::Json::Object();
  vl::Json events = vl::Json::Array();
  std::map<uint64_t, const FlightRecord*> by_id;
  for (const FlightRecord& flight : flights) {
    by_id[flight.request_id] = &flight;
  }
  auto pid_of = [&charges](const std::string& shard) {
    auto it = charges.find(shard);
    return it != charges.end() ? it->second.pid : 0;
  };
  // Track metadata: one process per shard, one thread per (shard, worker).
  std::map<std::string, std::map<size_t, bool>> tracks;
  for (const FlightRecord& flight : flights) {
    tracks[flight.shard][flight.worker] = true;
  }
  for (const auto& [shard, workers] : tracks) {
    vl::Json process = vl::Json::Object();
    process["name"] = vl::Json::Str("process_name");
    process["ph"] = vl::Json::Str("M");
    process["pid"] = vl::Json::Int(pid_of(shard));
    process["tid"] = vl::Json::Int(0);
    vl::Json pargs = vl::Json::Object();
    pargs["name"] = vl::Json::Str("shard " + shard);
    process["args"] = std::move(pargs);
    events.Append(std::move(process));
    for (const auto& [worker, unused] : workers) {
      vl::Json thread = vl::Json::Object();
      thread["name"] = vl::Json::Str("thread_name");
      thread["ph"] = vl::Json::Str("M");
      thread["pid"] = vl::Json::Int(pid_of(shard));
      thread["tid"] = vl::Json::Int(static_cast<int64_t>(worker));
      vl::Json targs = vl::Json::Object();
      targs["name"] = vl::Json::Str(
          worker == 0 ? "inline" : vl::StrFormat("worker %zu", worker));
      thread["args"] = std::move(targs);
      events.Append(std::move(thread));
    }
  }
  for (const FlightRecord& flight : flights) {
    vl::Json e = vl::Json::Object();
    e["name"] = vl::Json::Str(vl::StrFormat(
        "req %llu %s", static_cast<unsigned long long>(flight.request_id),
        FlightOutcomeName(flight.outcome)));
    e["cat"] = vl::Json::Str("vflight");
    e["ph"] = vl::Json::Str("X");
    // Executed flights span their service window; instant outcomes (dedup,
    // rejection) get a zero-duration slice at completion.
    bool executed = FlightExecuted(flight.outcome) && flight.executing_ns != 0;
    e["ts"] = vl::Json::Int(
        static_cast<int64_t>(executed ? flight.executing_ns : flight.finished_ns));
    e["dur"] = vl::Json::Int(static_cast<int64_t>(executed ? flight.service_ns : 0));
    e["pid"] = vl::Json::Int(pid_of(flight.shard));
    e["tid"] = vl::Json::Int(static_cast<int64_t>(flight.worker));
    vl::Json args = vl::Json::Object();
    args["request_id"] = vl::Json::Int(static_cast<int64_t>(flight.request_id));
    args["session"] = vl::Json::Int(flight.session_id);
    args["pane"] = vl::Json::Int(flight.pane);
    args["outcome"] = vl::Json::Str(FlightOutcomeName(flight.outcome));
    args["queue_ns"] = vl::Json::Int(static_cast<int64_t>(flight.queue_ns()));
    args["service_ns"] = vl::Json::Int(static_cast<int64_t>(flight.service_ns));
    args["total_ns"] = vl::Json::Int(static_cast<int64_t>(flight.total_ns()));
    if (flight.outcome == FlightOutcome::kDedupHit) {
      args["leader_request_id"] =
          vl::Json::Int(static_cast<int64_t>(flight.leader_request_id));
    }
    if (flight.outcome == FlightOutcome::kAdmissionRejected) {
      args["admission_rule"] = vl::Json::Str(flight.admission_rule);
    }
    e["args"] = std::move(args);
    events.Append(std::move(e));

    if (flight.outcome != FlightOutcome::kDedupHit) {
      continue;
    }
    // Causal link: a flow arrow from the leader's completion to this
    // coalesced follower. If the leader has already been evicted from the
    // ring, anchor the arrow at the follower's own submit instead — one flow
    // pair per dedup hit either way.
    auto leader = by_id.find(flight.leader_request_id);
    const FlightRecord* from = leader != by_id.end() ? leader->second : &flight;
    uint64_t from_ts = leader != by_id.end() ? from->finished_ns : flight.submitted_ns;
    vl::Json s = vl::Json::Object();
    s["name"] = vl::Json::Str("dedup");
    s["cat"] = vl::Json::Str("vflight");
    s["ph"] = vl::Json::Str("s");
    s["id"] = vl::Json::Int(static_cast<int64_t>(flight.request_id));
    s["ts"] = vl::Json::Int(static_cast<int64_t>(from_ts));
    s["pid"] = vl::Json::Int(pid_of(from->shard));
    s["tid"] = vl::Json::Int(static_cast<int64_t>(from->worker));
    events.Append(std::move(s));
    vl::Json f = vl::Json::Object();
    f["name"] = vl::Json::Str("dedup");
    f["cat"] = vl::Json::Str("vflight");
    f["ph"] = vl::Json::Str("f");
    f["bp"] = vl::Json::Str("e");
    f["id"] = vl::Json::Int(static_cast<int64_t>(flight.request_id));
    f["ts"] = vl::Json::Int(static_cast<int64_t>(flight.finished_ns));
    f["pid"] = vl::Json::Int(pid_of(flight.shard));
    f["tid"] = vl::Json::Int(static_cast<int64_t>(flight.worker));
    events.Append(std::move(f));
  }
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = vl::Json::Str("ns");

  vl::Json meta = vl::Json::Object();
  meta["clock"] = vl::Json::Str("virtual");
  vl::Json shard_meta = vl::Json::Object();
  for (const auto& [name, charge] : charges) {
    uint64_t service = flights_.shard_service_ns(name);
    vl::Json s = vl::Json::Object();
    s["pid"] = vl::Json::Int(charge.pid);
    s["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charge.charged_ns));
    s["control_ns"] = vl::Json::Int(static_cast<int64_t>(charge.control_ns));
    s["flight_service_ns"] = vl::Json::Int(static_cast<int64_t>(service));
    // Honest accounting: charges the flight/control split does not explain
    // (e.g. decorate/ViewQL work in `vctrl explain` outside the replot).
    s["unattributed_ns"] = vl::Json::Int(static_cast<int64_t>(charge.charged_ns) -
                                         static_cast<int64_t>(charge.control_ns) -
                                         static_cast<int64_t>(service));
    s["reconciled"] =
        vl::Json::Bool(charge.charged_ns == charge.control_ns + service);
    shard_meta[name] = std::move(s);
  }
  meta["shards"] = std::move(shard_meta);
  vl::Json fl = vl::Json::Object();
  fl["recorded"] = vl::Json::Int(static_cast<int64_t>(flights_.recorded()));
  fl["dropped"] = vl::Json::Int(static_cast<int64_t>(flights_.dropped()));
  meta["flights"] = std::move(fl);
  root["metadata"] = std::move(meta);
  return root;
}

vl::Json Server::TopJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  vl::Json j = vl::Json::Object();
  j["sessions"] = vl::Json::Int(static_cast<int64_t>(sessions_.size()));
  j["queued"] = vl::Json::Int(static_cast<int64_t>(queue_.size()));
  j["inflight"] = vl::Json::Int(static_cast<int64_t>(active_));
  j["workers"] = vl::Json::Int(static_cast<int64_t>(workers_.size()));
  j["paused"] = vl::Json::Bool(paused_);
  vl::Json shards = vl::Json::Object();
  for (const auto& shard : shards_) {
    size_t depth = 0;
    size_t inflight = 0;
    for (const Request& request : queue_) {
      if (request.session->shard_ == shard.get()) {
        depth++;
      }
    }
    for (const Session* session : sessions_) {
      if (session->shard_ == shard.get() && session->in_flight_) {
        inflight++;
      }
    }
    uint64_t extractions = 0;
    double block_hit_rate = 0.0;
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      extractions = shard->extractions;
      block_hit_rate = shard->debugger->session().cache_stats().HitRate();
    }
    uint64_t dedup_hits = 0;
    double result_hit_rate = 0.0;
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      dedup_hits = shard->dedup_hits;
      const ResultCache::Stats& rc = shard->cache.stats();
      uint64_t lookups = rc.hits + rc.misses;
      result_hit_rate =
          lookups > 0 ? static_cast<double>(rc.hits) / static_cast<double>(lookups) : 0.0;
    }
    FlightStats stats = flights_.ShardStats(shard->name);
    uint64_t served = extractions + dedup_hits;
    vl::Json s = vl::Json::Object();
    s["sessions"] = vl::Json::Int(static_cast<int64_t>(shard->sessions));
    s["queue_depth"] = vl::Json::Int(static_cast<int64_t>(depth));
    s["inflight"] = vl::Json::Int(static_cast<int64_t>(inflight));
    s["extractions"] = vl::Json::Int(static_cast<int64_t>(extractions));
    s["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(dedup_hits));
    s["dedup_ratio"] = vl::Json::Number(
        served > 0 ? static_cast<double>(dedup_hits) / static_cast<double>(served) : 0.0);
    s["result_cache_hit_rate"] = vl::Json::Number(result_hit_rate);
    s["block_cache_hit_rate"] = vl::Json::Number(block_hit_rate);
    s["p99_queue_ns"] = vl::Json::Number(stats.queue_ns.ApproxQuantile(0.99));
    s["p99_service_ns"] = vl::Json::Number(stats.service_ns.ApproxQuantile(0.99));
    shards[shard->name] = std::move(s);
  }
  j["shards"] = std::move(shards);
  return j;
}

std::string Server::TopText() const {
  vl::Json top = TopJson();
  std::string out = vl::StrFormat(
      "sessions=%lld queued=%lld inflight=%lld workers=%lld%s\n",
      static_cast<long long>(top.Find("sessions")->AsInt()),
      static_cast<long long>(top.Find("queued")->AsInt()),
      static_cast<long long>(top.Find("inflight")->AsInt()),
      static_cast<long long>(top.Find("workers")->AsInt()),
      top.Find("paused")->AsBool() ? " PAUSED" : "");
  out += vl::StrFormat("%-10s %5s %5s %8s %8s %6s %6s %6s %14s %14s\n", "shard", "sess",
                       "queue", "inflight", "extract", "dedup", "rcache", "bcache",
                       "p99_queue_ns", "p99_service_ns");
  const vl::Json* shards = top.Find("shards");
  for (const auto& [name, s] : shards->entries()) {
    out += vl::StrFormat(
        "%-10s %5lld %5lld %8lld %8lld %5.0f%% %5.0f%% %5.0f%% %14.0f %14.0f\n",
        name.c_str(), static_cast<long long>(s.Find("sessions")->AsInt()),
        static_cast<long long>(s.Find("queue_depth")->AsInt()),
        static_cast<long long>(s.Find("inflight")->AsInt()),
        static_cast<long long>(s.Find("extractions")->AsInt()),
        s.Find("dedup_ratio")->AsNumber() * 100.0,
        s.Find("result_cache_hit_rate")->AsNumber() * 100.0,
        s.Find("block_cache_hit_rate")->AsNumber() * 100.0,
        s.Find("p99_queue_ns")->AsNumber(), s.Find("p99_service_ns")->AsNumber());
  }
  return out;
}

// ---------------------------------------------------------------------------
// vcheck fleet sweep

vl::Json Server::ShardSweep::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["shard"] = vl::Json::Str(shard);
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["report"] = report.ToJson();
  return j;
}

size_t Server::SweepResult::violations() const {
  size_t n = 0;
  for (const ShardSweep& s : shards) n += s.report.violations();
  return n;
}

size_t Server::SweepResult::rules_run() const {
  size_t n = 0;
  for (const ShardSweep& s : shards) n += s.report.rules_run();
  return n;
}

size_t Server::SweepResult::rules_skipped() const {
  size_t n = 0;
  for (const ShardSweep& s : shards) n += s.report.rules_skipped();
  return n;
}

bool Server::SweepResult::reconciled() const {
  for (const ShardSweep& s : shards) {
    if (!s.report.reconciled) return false;
  }
  return true;
}

vl::Json Server::SweepResult::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["violations"] = vl::Json::Int(static_cast<int64_t>(violations()));
  j["rules_run"] = vl::Json::Int(static_cast<int64_t>(rules_run()));
  j["rules_skipped"] = vl::Json::Int(static_cast<int64_t>(rules_skipped()));
  j["reconciled"] = vl::Json::Bool(reconciled());
  vl::Json arr = vl::Json::Array();
  for (const ShardSweep& s : shards) arr.Append(s.ToJson());
  j["shards"] = std::move(arr);
  return j;
}

std::string Server::SweepResult::RenderText() const {
  std::string out;
  for (const ShardSweep& s : shards) {
    out += "shard " + s.shard + " (" + std::to_string(s.charged_ns) + " ns):\n";
    std::string body = s.report.RenderText();
    size_t pos = 0;
    while (pos < body.size()) {
      size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      out += "  " + body.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  out += vl::StrFormat("sweep: %zu shard(s), %zu rule(s) run, %zu skipped, %zu violation(s)%s\n",
                       shards.size(), rules_run(), rules_skipped(), violations(),
                       reconciled() ? "" : " [NOT RECONCILED]");
  return out;
}

vl::StatusOr<Server::SweepResult> Server::Sweep(std::string_view rule, bool incremental) {
  const bool all = rule.empty() || rule == "all";
  if (!all && analysis::CheckEngine::FindRule(rule) == nullptr) {
    return vl::InvalidArgumentError(
        vl::StrFormat("unknown check rule '%s'", std::string(rule).c_str()));
  }
  // Collect the fleet under the server lock, then sweep shard-by-shard under
  // each shard's extraction lock (shards are never destroyed while the server
  // lives, so the raw pointers stay valid after mu_ is released).
  std::vector<internal::Shard*> fleet;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) fleet.push_back(shard.get());
  }
  SweepResult result;
  for (internal::Shard* shard : fleet) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    dbg::KernelDebugger* debugger = shard->debugger;
    if (shard->checker == nullptr) {
      shard->checker = std::make_unique<analysis::CheckEngine>(
          &debugger->types(), &debugger->symbols(), &debugger->session());
    }
    ShardSweep sweep;
    sweep.shard = shard->name;
    const uint64_t before = debugger->target().clock().nanos();
    if (all) {
      sweep.report = incremental ? shard->checker->RunIncremental()
                                 : shard->checker->RunAll();
    } else {
      vl::StatusOr<analysis::CheckReport> one = shard->checker->RunOne(rule);
      if (!one.ok()) {
        return one.status();
      }
      sweep.report = std::move(one).value();
    }
    sweep.charged_ns = debugger->target().clock().nanos() - before;
    // Sweeps are control-plane work on the shard clock: attribute the charge
    // so flight reconciliation (charged == control + sum(service)) holds.
    shard->control_ns += sweep.charged_ns;
    result.shards.push_back(std::move(sweep));
  }
  check_sweeps_.fetch_add(1, std::memory_order_relaxed);
  check_violations_.store(result.violations(), std::memory_order_relaxed);
  check_rules_run_.store(result.rules_run(), std::memory_order_relaxed);
  check_rules_skipped_.store(result.rules_skipped(), std::memory_order_relaxed);
  uint64_t charged = 0;
  for (const ShardSweep& s : result.shards) charged += s.charged_ns;
  check_charged_ns_.fetch_add(charged, std::memory_order_relaxed);
  return result;
}

void Server::ResetStats() {
  Drain();
  std::lock_guard<std::mutex> lock(mu_);
  // Target::ResetStats (below) clears check.*, plan.*, and read.vector.* per
  // shard, but a shardless server must still honor the reset-zeroes-every-
  // family invariant.
  vl::MetricsRegistry::Instance().ResetPrefix("check.");
  vl::MetricsRegistry::Instance().ResetPrefix("plan.");
  vl::MetricsRegistry::Instance().ResetPrefix("read.vector.");
  for (const auto& shard : shards_) {
    // Target::ResetStats zeroes the virtual clock itself, so the charged-ns
    // baseline re-reads it afterwards and reconciliation restarts from zero.
    shard->debugger->target().ResetStats();
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->extractions = 0;
      shard->control_ns = 0;
      shard->clock0 = shard->debugger->target().clock().nanos();
    }
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      shard->dedup_hits = 0;
      // Stats only — cached results stay valid (their epochs still match),
      // so dedup keeps working across a reset.
      shard->cache.ResetStats();
    }
  }
  for (Session* session : sessions_) {
    session->charged_ns_.store(0, std::memory_order_relaxed);
    session->requests_.store(0, std::memory_order_relaxed);
    session->executed_.store(0, std::memory_order_relaxed);
    session->deduped_.store(0, std::memory_order_relaxed);
    session->rejected_.store(0, std::memory_order_relaxed);
  }
  flights_.Clear();
  check_sweeps_.store(0, std::memory_order_relaxed);
  check_violations_.store(0, std::memory_order_relaxed);
  check_rules_run_.store(0, std::memory_order_relaxed);
  check_rules_skipped_.store(0, std::memory_order_relaxed);
  check_charged_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace vserve
