#include "src/serve/server.h"

#include <utility>

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/vision/figures.h"

namespace vserve {

namespace internal {

// One simulated kernel behind the front end, plus everything its sessions
// share: the debugger (whose ReadSession block cache is the shared extraction
// cache), the per-program ViewCL engines, and the refresh result cache.
struct Shard {
  explicit Shard(size_t cache_entries) : cache(cache_entries) {}

  std::string name;
  dbg::KernelDebugger* debugger = nullptr;  // owned_debugger.get() or borrowed
  std::unique_ptr<vkern::Kernel> kernel;        // BootShard shards only
  std::unique_ptr<vkern::Workload> workload;    // BootShard shards only
  std::unique_ptr<dbg::KernelDebugger> owned_debugger;

  // Serializes extraction on this shard and guards `engines`.
  std::mutex mu;
  // Shared per-program engines: Load once, Run per refresh, so interning and
  // memo snapshots persist across refreshes and across sessions.
  std::map<std::string, std::unique_ptr<viewcl::Interpreter>> engines;

  // Guards `cache` and `dedup_hits`. Lock order: mu before cache_mu.
  mutable std::mutex cache_mu;
  ResultCache cache;
  uint64_t dedup_hits = 0;

  uint64_t extractions = 0;  // guarded by mu
  size_t sessions = 0;       // guarded by the server mutex
};

}  // namespace internal

namespace {

vl::Status ValidateShardName(const std::string& name) {
  if (name.empty()) {
    return vl::InvalidArgumentError("shard name must be non-empty");
  }
  if (name.find('|') != std::string::npos ||
      name.find_first_of(" \t\n") != std::string::npos) {
    return vl::InvalidArgumentError(vl::StrFormat(
        "shard name '%s' may not contain '|' or whitespace", name.c_str()));
  }
  return vl::Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Ticket

bool Ticket::done() const {
  if (state_ == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

vl::StatusOr<ServeResult> Ticket::Wait() const {
  if (state_ == nullptr) {
    return vl::FailedPreconditionError("waiting on an empty ticket");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->result.has_value(); });
  return *state_->result;
}

// ---------------------------------------------------------------------------
// Session

Session::Session(Server* server, internal::Shard* shard, SessionOptions options, int id)
    : server_(server),
      shard_(shard),
      options_(std::move(options)),
      id_(id),
      debugger_(shard->debugger),
      panes_(shard->debugger) {
  panes_.AttachObservers(&recorder_, &budgets_);
  panes_.set_render_cache_enabled(options_.render_cache);
}

Session::~Session() { server_->CancelSession(this); }

const std::string& Session::shard_name() const { return shard_->name; }

viewcl::Interpreter* Session::classic_engine() {
  if (classic_engine_ == nullptr) {
    classic_engine_ = std::make_unique<viewcl::Interpreter>(debugger_);
  }
  return classic_engine_.get();
}

viewcl::EmojiRegistry& Session::emoji() { return classic_engine()->emoji(); }

vl::StatusOr<Session::PlotResult> Session::Plot(int pane, const std::string& program) {
  std::unique_ptr<viewcl::ViewGraph> graph;
  {
    std::lock_guard<std::mutex> lock(shard_->mu);
    VL_ASSIGN_OR_RETURN(graph, server_->ReplotLocked(this, program));
  }
  PlotResult out;
  out.boxes = graph->size();
  out.warnings = last_warnings_;
  VL_RETURN_IF_ERROR(panes_.SetGraph(pane, std::move(graph), program));
  return out;
}

vl::Status Session::Apply(int pane, std::string_view viewql) {
  return panes_.ApplyViewQl(pane, viewql);
}

vl::StatusOr<int> Session::Split(int pane, char direction) {
  return panes_.Split(pane, direction);
}

std::string Session::Render(int pane, const vision::RenderOptions& options,
                            std::string_view backend) {
  return panes_.RenderPane(pane, options, backend);
}

vl::StatusOr<ServeResult> Session::Refresh(int pane, const std::string& backend,
                                           const vision::RenderOptions& options) {
  VL_ASSIGN_OR_RETURN(Ticket ticket, SubmitRefresh(pane, backend, options));
  return ticket.Wait();
}

vl::StatusOr<Ticket> Session::SubmitRefresh(int pane, const std::string& backend,
                                            const vision::RenderOptions& options) {
  return server_->Submit(this, pane, backend, options);
}

vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> Session::RunProgram(
    const std::string& program, std::vector<std::string>* warnings) {
  std::lock_guard<std::mutex> lock(shard_->mu);
  auto result = server_->ReplotLocked(this, program);
  if (warnings != nullptr) {
    warnings->insert(warnings->end(), last_warnings_.begin(), last_warnings_.end());
  }
  return result;
}

vision::PaneManager::ReplotFn Session::MakeReplotFn() {
  return [this](const std::string& program) {
    std::lock_guard<std::mutex> lock(shard_->mu);
    return server_->ReplotLocked(this, program);
  };
}

vl::Json Session::StatsToJson() const {
  vl::Json j = vl::Json::Object();
  j["id"] = vl::Json::Int(id_);
  j["shard"] = vl::Json::Str(shard_->name);
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns()));
  j["requests"] = vl::Json::Int(static_cast<int64_t>(requests()));
  j["executed"] = vl::Json::Int(static_cast<int64_t>(executed()));
  j["deduped"] = vl::Json::Int(static_cast<int64_t>(deduped()));
  j["rejected"] = vl::Json::Int(static_cast<int64_t>(rejected()));
  return j;
}

// ---------------------------------------------------------------------------
// Client

vl::StatusOr<Client> Client::Connect(Server* server, SessionOptions options) {
  return server->Connect(std::move(options));
}

// ---------------------------------------------------------------------------
// Server

Server::Server(ServerConfig config) : config_(config) {
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  std::deque<Request> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    for (Request& req : leftovers) {
      req.session->queued_--;
    }
  }
  for (Request& req : leftovers) {
    Fulfill(req.ticket, vl::FailedPreconditionError("server destroyed"));
  }
}

vl::Status Server::AddShard(const std::string& name, dbg::KernelDebugger* debugger) {
  VL_RETURN_IF_ERROR(ValidateShardName(name));
  if (debugger == nullptr) {
    return vl::InvalidArgumentError("shard debugger must be non-null");
  }
  auto shard = std::make_unique<internal::Shard>(config_.result_cache_entries);
  shard->name = name;
  shard->debugger = debugger;
  std::lock_guard<std::mutex> lock(mu_);
  if (FindShard(name) != nullptr) {
    return vl::FailedPreconditionError(
        vl::StrFormat("shard '%s' already registered", name.c_str()));
  }
  shards_.push_back(std::move(shard));
  return vl::Status::Ok();
}

vl::Status Server::BootShard(const std::string& name, const dbg::LatencyModel& model,
                             int workload_steps) {
  VL_RETURN_IF_ERROR(ValidateShardName(name));
  auto shard = std::make_unique<internal::Shard>(config_.result_cache_entries);
  shard->name = name;
  shard->kernel = std::make_unique<vkern::Kernel>();
  vkern::WorkloadConfig workload_config;
  workload_config.steps = workload_steps;
  shard->workload = std::make_unique<vkern::Workload>(shard->kernel.get(), workload_config);
  shard->workload->Run();
  shard->owned_debugger = std::make_unique<dbg::KernelDebugger>(shard->kernel.get(), model);
  shard->debugger = shard->owned_debugger.get();
  vision::RegisterFigureSymbols(shard->debugger, shard->workload.get());
  std::lock_guard<std::mutex> lock(mu_);
  if (FindShard(name) != nullptr) {
    return vl::FailedPreconditionError(
        vl::StrFormat("shard '%s' already registered", name.c_str()));
  }
  shards_.push_back(std::move(shard));
  return vl::Status::Ok();
}

internal::Shard* Server::FindShard(const std::string& name) const {
  for (const auto& shard : shards_) {
    if (shard->name == name) {
      return shard.get();
    }
  }
  return nullptr;
}

size_t Server::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

dbg::KernelDebugger* Server::shard_debugger(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->debugger : nullptr;
}

vkern::Kernel* Server::shard_kernel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->kernel.get() : nullptr;
}

vkern::Workload* Server::shard_workload(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  internal::Shard* shard = FindShard(name);
  return shard != nullptr ? shard->workload.get() : nullptr;
}

vl::StatusOr<Client> Server::Connect(SessionOptions options) {
  vl::DiagnosticList diags = options.Validate();
  if (diags.errors() > 0) {
    return vl::InvalidArgumentError("invalid session options:\n" + options.ValidationText());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.empty()) {
    return vl::FailedPreconditionError("no shards registered; AddShard/BootShard first");
  }
  internal::Shard* shard = nullptr;
  if (!options.shard.empty()) {
    shard = FindShard(options.shard);
    if (shard == nullptr) {
      return vl::NotFoundError(vl::StrFormat("no such shard '%s'", options.shard.c_str()));
    }
  } else {
    shard = shards_[round_robin_ % shards_.size()].get();
    round_robin_++;
  }
  // Sessions sharing a shard share its ReadSession, so their cache configs
  // must agree. An empty shard adopts the newcomer's config; an occupied one
  // refuses a mismatch (reconfiguring would flush caches out from under the
  // sessions relying on them).
  dbg::CacheConfig want = options.ToCacheConfig();
  if (!SameCacheConfig(shard->debugger->session().config(), want)) {
    if (shard->sessions > 0) {
      return vl::FailedPreconditionError(vl::StrFormat(
          "cache config conflicts with %zu active session(s) on shard '%s'; "
          "use matching SessionOptions or another shard",
          shard->sessions, shard->name.c_str()));
    }
    shard->debugger->session().Reconfigure(want);
  }
  std::unique_ptr<Session> session(
      new Session(this, shard, std::move(options), next_session_id_++));
  sessions_.push_back(session.get());
  shard->sessions++;
  return Client(std::move(session));
}

void Server::CancelSession(Session* session) {
  std::vector<std::shared_ptr<Ticket::State>> orphans;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->session == session) {
        orphans.push_back(std::move(it->ticket));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    session->queued_ = 0;
    drained_cv_.wait(lock, [&] { return !session->in_flight_; });
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (*it == session) {
        sessions_.erase(it);
        break;
      }
    }
    session->shard_->sessions--;
  }
  for (const auto& ticket : orphans) {
    Fulfill(ticket, vl::FailedPreconditionError("session closed"));
  }
}

// ---------------------------------------------------------------------------
// Scheduler

void Server::Fulfill(const std::shared_ptr<Ticket::State>& ticket,
                     vl::StatusOr<ServeResult> result) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->result.emplace(std::move(result));
  }
  ticket->cv.notify_all();
}

std::deque<Server::Request>::iterator Server::FirstEligibleLocked() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!it->session->in_flight_) {
      return it;
    }
  }
  return queue_.end();
}

vl::StatusOr<Ticket> Server::Submit(Session* session, int pane, const std::string& backend,
                                    const vision::RenderOptions& options) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return vl::FailedPreconditionError("server is shutting down");
    }
    if (session->queued_ >= session->options_.max_queued) {
      session->rejected_.fetch_add(1, std::memory_order_relaxed);
      return vl::ResourceExhaustedError(vl::StrFormat(
          "session %d refresh queue full (%zu queued, max_queued=%zu)", session->id_,
          session->queued_, session->options_.max_queued));
    }
    queue_.push_back(Request{session, pane, backend, options, ticket.state_});
    session->queued_++;
    drain = workers_.empty() && !paused_;
  }
  work_cv_.notify_one();
  if (drain) {
    DrainInline();
  }
  return ticket;
}

void Server::WorkerLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return stop_ || (!paused_ && FirstEligibleLocked() != queue_.end());
    });
    if (stop_) {
      return;
    }
    auto it = FirstEligibleLocked();
    Request req = std::move(*it);
    queue_.erase(it);
    req.session->queued_--;
    req.session->in_flight_ = true;
    active_++;
    lock.unlock();

    vl::StatusOr<ServeResult> result =
        ExecuteRefresh(req.session, req.pane, req.backend, req.options);
    Fulfill(req.ticket, std::move(result));

    lock.lock();
    req.session->in_flight_ = false;
    active_--;
    drained_cv_.notify_all();
    // The session's next queued request (if any) just became eligible.
    work_cv_.notify_all();
  }
}

void Server::DrainInline() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    auto it = FirstEligibleLocked();
    if (it == queue_.end()) {
      // Every queued request belongs to a session another thread is serving;
      // wait for one to finish.
      drained_cv_.wait(lock);
      continue;
    }
    Request req = std::move(*it);
    queue_.erase(it);
    req.session->queued_--;
    req.session->in_flight_ = true;
    active_++;
    lock.unlock();

    vl::StatusOr<ServeResult> result =
        ExecuteRefresh(req.session, req.pane, req.backend, req.options);
    Fulfill(req.ticket, std::move(result));

    lock.lock();
    req.session->in_flight_ = false;
    active_--;
    drained_cv_.notify_all();
  }
}

void Server::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Server::Resume() {
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    drain = workers_.empty();
  }
  work_cv_.notify_all();
  if (drain) {
    DrainInline();
  }
}

void Server::Drain() {
  if (workers_.empty()) {
    DrainInline();
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

// ---------------------------------------------------------------------------
// The refresh data path

std::string Server::DedupKey(Session* session, int pane, const std::string& backend,
                             const vision::RenderOptions& options) const {
  std::string program = session->panes_.program_text(pane);
  if (program.empty()) {
    return "";  // nothing to coalesce (empty or secondary pane)
  }
  std::string key = vl::StrFormat(
      "%llu|%s|%d%d%d|se%d|",
      static_cast<unsigned long long>(session->debugger_->kernel()->generation()),
      backend.c_str(), options.show_addresses ? 1 : 0, options.show_attributes ? 1 : 0,
      options.max_container_preview, session->options_.shared_engines ? 1 : 0);
  key += program;
  key += '\x1e';
  const std::vector<std::string>* history = session->panes_.viewql_history(pane);
  if (history != nullptr) {
    for (const std::string& entry : *history) {
      key += entry;
      key += '\x1f';
    }
  }
  return key;
}

ServeResult Server::ServeFromCacheLocked(Session* session, internal::Shard* shard,
                                         const ServeResult& hit) {
  ServeResult out = hit;
  out.deduped = true;
  out.refresh_ns = 0;  // the whole point: the duplicate is charged nothing
  out.violations.clear();
  out.sequence = NextSequence();
  shard->dedup_hits++;
  session->deduped_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> Server::ReplotLocked(
    Session* session, const std::string& program) {
  session->last_warnings_.clear();
  if (!session->options_.shared_engines) {
    // Classic semantics: one private interpreter that re-loads the program on
    // every replot (exactly the pre-vserve DebuggerShell behavior, including
    // binding accumulation across panes).
    viewcl::Interpreter* engine = session->classic_engine();
    auto result = engine->RunProgram(program);
    session->last_warnings_ = engine->warnings();
    return result;
  }
  internal::Shard* shard = session->shard_;
  std::unique_ptr<viewcl::Interpreter>& slot = shard->engines[program];
  if (slot == nullptr) {
    slot = std::make_unique<viewcl::Interpreter>(shard->debugger);
    vl::Status loaded = slot->Load(program);
    if (!loaded.ok()) {
      shard->engines.erase(program);
      return loaded;
    }
  }
  // Load() once, Run() per refresh: the engine's interning and memo
  // snapshots persist across refreshes and across every session plotting
  // this program.
  auto result = slot->Run();
  session->last_warnings_ = slot->warnings();
  return result;
}

vl::StatusOr<ServeResult> Server::ExecuteRefresh(Session* session, int pane,
                                                 const std::string& backend,
                                                 const vision::RenderOptions& options) {
  session->requests_.fetch_add(1, std::memory_order_relaxed);

  // Admission: a session over its latency budget gets rejected up front.
  uint64_t budget = session->options_.session_budget_ns;
  if (budget > 0 && session->charged_ns() >= budget) {
    session->rejected_.fetch_add(1, std::memory_order_relaxed);
    vl::Json explain = vl::Json::Object();
    explain["reason"] = vl::Json::Str("admission");
    explain["pane"] = vl::Json::Int(pane);
    explain["charged_ns"] = vl::Json::Int(static_cast<int64_t>(session->charged_ns()));
    session->budgets_.RecordViolation(
        vl::StrFormat("serve.session.%d", session->id_), budget, session->charged_ns(),
        session->debugger_->kernel()->generation(), std::move(explain));
    return vl::ResourceExhaustedError(vl::StrFormat(
        "session %d over latency budget (%llu ns charged, budget %llu ns); "
        "refresh rejected",
        session->id_, static_cast<unsigned long long>(session->charged_ns()),
        static_cast<unsigned long long>(budget)));
  }

  internal::Shard* shard = session->shard_;
  std::string key;
  if (session->options_.coalesce) {
    key = DedupKey(session, pane, backend, options);
    if (!key.empty()) {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      if (const ServeResult* hit = shard->cache.Find(key)) {
        return ServeFromCacheLocked(session, shard, *hit);
      }
    }
  }

  std::lock_guard<std::mutex> lock(shard->mu);
  if (!key.empty()) {
    // Re-check: a concurrent duplicate may have extracted while we waited on
    // the shard — this re-check IS the request coalescing.
    std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
    if (const ServeResult* hit = shard->cache.Find(key)) {
      return ServeFromCacheLocked(session, shard, *hit);
    }
  }

  uint64_t before = session->debugger_->target().clock().nanos();
  vision::PaneManager::ReplotFn replot = [this, session](const std::string& program) {
    return ReplotLocked(session, program);
  };
  auto refreshed = session->panes_.RefreshPane(pane, replot);
  if (!refreshed.ok()) {
    return refreshed.status();
  }
  ServeResult out;
  out.boxes = refreshed->boxes;
  out.epoch = refreshed->epoch;
  out.render_reused = refreshed->render_reused;
  out.violations = refreshed->violations;
  if (session->options_.coalesce) {
    // Capture the render so a coalesced duplicate can be served bytes, not
    // just accounting. Classic sessions skip this to keep their render
    // digest counters exactly as the pre-vserve shell left them.
    out.render = session->panes_.RenderPane(pane, options, backend);
  }
  uint64_t after = session->debugger_->target().clock().nanos();
  out.refresh_ns = after - before;
  out.sequence = NextSequence();

  session->charged_ns_.fetch_add(out.refresh_ns, std::memory_order_relaxed);
  session->executed_.fetch_add(1, std::memory_order_relaxed);
  shard->extractions++;

  if (!key.empty()) {
    std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
    shard->cache.Insert(key, out);
  }
  if (session->recorder_.enabled()) {
    session->recorder_.Record(
        "serve.refresh",
        {{"pane", pane},
         {"refresh_ns", static_cast<int64_t>(out.refresh_ns)},
         {"charged_ns", static_cast<int64_t>(session->charged_ns())},
         {"deduped", 0}});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stats

vl::Json Server::StatsToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  vl::Json j = vl::Json::Object();
  j["sessions"] = vl::Json::Int(static_cast<int64_t>(sessions_.size()));
  j["shard_count"] = vl::Json::Int(static_cast<int64_t>(shards_.size()));
  j["workers"] = vl::Json::Int(static_cast<int64_t>(workers_.size()));
  j["queued"] = vl::Json::Int(static_cast<int64_t>(queue_.size()));
  vl::Json shards = vl::Json::Object();
  for (const auto& shard : shards_) {
    vl::Json s = vl::Json::Object();
    s["sessions"] = vl::Json::Int(static_cast<int64_t>(shard->sessions));
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      s["extractions"] = vl::Json::Int(static_cast<int64_t>(shard->extractions));
      s["engines"] = vl::Json::Int(static_cast<int64_t>(shard->engines.size()));
    }
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      s["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(shard->dedup_hits));
      s["result_cache"] = shard->cache.StatsToJson();
    }
    s["target_charged_ns"] =
        vl::Json::Int(static_cast<int64_t>(shard->debugger->target().clock().nanos()));
    shards[shard->name] = std::move(s);
  }
  j["shards"] = std::move(shards);
  vl::Json sessions = vl::Json::Array();
  for (const Session* session : sessions_) {
    sessions.Append(session->StatsToJson());
  }
  j["per_session"] = std::move(sessions);
  return j;
}

void Server::PublishMetrics() const {
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  std::lock_guard<std::mutex> lock(mu_);
  metrics.GetGauge("serve.sessions")->Set(static_cast<int64_t>(sessions_.size()));
  metrics.GetGauge("serve.queued")->Set(static_cast<int64_t>(queue_.size()));
  for (const auto& shard : shards_) {
    const std::string prefix = "serve.shard." + shard->name;
    metrics.GetGauge(prefix + ".sessions")->Set(static_cast<int64_t>(shard->sessions));
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      metrics.GetGauge(prefix + ".extractions")
          ->Set(static_cast<int64_t>(shard->extractions));
    }
    {
      std::lock_guard<std::mutex> cache_lock(shard->cache_mu);
      metrics.GetGauge(prefix + ".dedup_hits")
          ->Set(static_cast<int64_t>(shard->dedup_hits));
    }
  }
  for (const Session* session : sessions_) {
    const std::string prefix = vl::StrFormat("serve.session.%d", session->id());
    metrics.GetGauge(prefix + ".charged_ns")
        ->Set(static_cast<int64_t>(session->charged_ns()));
    metrics.GetGauge(prefix + ".executed")->Set(static_cast<int64_t>(session->executed()));
    metrics.GetGauge(prefix + ".deduped")->Set(static_cast<int64_t>(session->deduped()));
    metrics.GetGauge(prefix + ".rejected")->Set(static_cast<int64_t>(session->rejected()));
  }
}

}  // namespace vserve
