// vserve: the multi-session serving layer (the PR's tentpole).
//
// A Server fronts a fleet of simulated kernels ("shards"). Each shard is one
// dbg::KernelDebugger — its ReadSession block cache, its per-program ViewCL
// engines (with their memo snapshots), and its refresh result cache are
// SHARED by every session attached to the shard, so overlapping clients reuse
// each other's work. Sessions are the per-client view: a private PaneManager
// (layout, ViewQL refinements, render digests), private vexplain side-cars
// (TimeSeriesRecorder + BudgetRegistry), and private accounting of what the
// client was actually charged on the virtual clock.
//
// Request flow for Refresh:
//   1. admission — a session over its latency budget is rejected with
//      RESOURCE_EXHAUSTED (and the violation recorded for vexplain);
//   2. dedup — with coalescing on, the shard result cache is consulted for an
//      identical (program+history, epoch, backend) refresh; a hit is served
//      with zero charge;
//   3. extraction — otherwise the refresh runs under the shard lock through
//      PaneManager::RefreshPane (so a concurrent duplicate blocks, and finds
//      the freshly inserted result on the re-check — that is the coalescing).
//
// SubmitRefresh is the async path: requests queue FIFO and a worker pool
// (ServerConfig::workers) drains them, never running two requests of the same
// session concurrently (per-session FIFO order is preserved; results carry a
// server-wide completion sequence). With workers == 0 the server runs inline:
// SubmitRefresh executes on the calling thread unless the server is Paused,
// in which case requests queue until Resume()/Drain().
//
// Threading contract: Refresh/SubmitRefresh/Wait are safe from any thread.
// Everything else — pane surgery (Plot/Apply/Split), kernel mutation,
// Connect/shard management, stats snapshots — is control-plane and must not
// overlap in-flight refreshes of the affected shard (call Drain() first).
// The global Tracer is single-threaded; keep tracing off while multiple
// workers serve budget-armed sessions on different shards.

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/analysis/check.h"
#include "src/dbg/kernel_introspect.h"
#include "src/serve/flight.h"
#include "src/serve/options.h"
#include "src/serve/result_cache.h"
#include "src/support/budget.h"
#include "src/support/status.h"
#include "src/support/timeseries.h"
#include "src/viewcl/interp.h"
#include "src/vision/panes.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace vserve {

class Server;
class Session;

namespace internal {
struct Shard;  // one simulated kernel + everything its sessions share
}  // namespace internal

struct ServerConfig {
  // Async refresh workers; 0 = inline execution on the submitting thread.
  size_t workers = 0;
  // Per-shard refresh result cache capacity (dedup window).
  size_t result_cache_entries = 256;
  // Flight-recorder ring capacity (completed per-request records retained).
  size_t flight_records = 512;
  // Start with the flight recorder on. The recorder is bounded and cheap
  // (one relaxed-atomic check on the data path when off; see bench_micro's
  // overhead guard), so it defaults on; Server::flights().Disable() or this
  // flag turn all stamping off.
  bool flight_recorder = true;
};

// Handle to an async refresh submitted with Session::SubmitRefresh.
class Ticket {
 public:
  Ticket() = default;
  bool valid() const { return state_ != nullptr; }
  bool done() const;
  // Blocks until the refresh completes (or the server/session shuts down,
  // which fails pending tickets). Safe to call repeatedly.
  vl::StatusOr<ServeResult> Wait() const;

 private:
  friend class Server;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<vl::StatusOr<ServeResult>> result;
  };
  std::shared_ptr<State> state_;
};

// One client's attachment to a shard: the unified vserve entry point
// (attach -> plot -> refresh -> render). Created only via Server::Connect.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int id() const { return id_; }
  const SessionOptions& options() const { return options_; }
  const std::string& shard_name() const;
  Server* server() const { return server_; }

  // --- figure lifecycle (control-plane) ---
  struct PlotResult {
    size_t boxes = 0;
    std::vector<std::string> warnings;
  };
  // Extracts `program` through the shard engine (or this session's classic
  // engine, per options) and installs the graph into `pane`.
  vl::StatusOr<PlotResult> Plot(int pane, const std::string& program);
  // Applies a ViewQL refinement to the pane (recorded; replayed on refresh).
  vl::Status Apply(int pane, std::string_view viewql);
  vl::StatusOr<int> Split(int pane, char direction);
  // Renders the pane's current graph without refreshing.
  std::string Render(int pane, const vision::RenderOptions& options = {},
                     std::string_view backend = "ascii");

  // --- refresh (data-plane) ---
  // Synchronous refresh: admission -> dedup -> extraction (see file header).
  vl::StatusOr<ServeResult> Refresh(int pane, const std::string& backend = "ascii",
                                    const vision::RenderOptions& options = {});
  // Async refresh via the scheduler. Rejects with RESOURCE_EXHAUSTED once
  // this session has options().max_queued requests pending.
  vl::StatusOr<Ticket> SubmitRefresh(int pane, const std::string& backend = "ascii",
                                     const vision::RenderOptions& options = {});

  // --- escape hatches for the shell & tools ---
  // Runs a ViewCL program through this session's engine without touching any
  // pane (the vprof path). Appends engine warnings to `warnings` if non-null.
  vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> RunProgram(
      const std::string& program, std::vector<std::string>* warnings = nullptr);
  // Replot function wired to this session's engine, for direct PaneManager
  // calls (session load, `vctrl explain`). Takes the shard lock per call —
  // never use it inside a refresh already holding the shard.
  vision::PaneManager::ReplotFn MakeReplotFn();

  dbg::KernelDebugger* debugger() const { return debugger_; }
  vision::PaneManager& panes() { return panes_; }
  vl::TimeSeriesRecorder& recorder() { return recorder_; }
  vl::BudgetRegistry& budgets() { return budgets_; }
  // Emoji registry backing lint / vchat for this session.
  viewcl::EmojiRegistry& emoji();

  // Virtual nanoseconds this session was actually charged (deduped refreshes
  // charge nothing — that is the point).
  uint64_t charged_ns() const { return charged_ns_.load(std::memory_order_relaxed); }
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }
  uint64_t deduped() const { return deduped_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  vl::Json StatsToJson() const;

 private:
  friend class Server;

  Session(Server* server, internal::Shard* shard, SessionOptions options, int id);
  viewcl::Interpreter* classic_engine();

  Server* server_;
  internal::Shard* shard_;
  SessionOptions options_;
  int id_;
  dbg::KernelDebugger* debugger_;

  vl::TimeSeriesRecorder recorder_;
  vl::BudgetRegistry budgets_;
  vision::PaneManager panes_;
  // Private interpreter for classic (non-shared-engine) sessions; also backs
  // emoji() lazily for shared-engine sessions.
  std::unique_ptr<viewcl::Interpreter> classic_engine_;
  // Engine warnings from the most recent replot through this session.
  std::vector<std::string> last_warnings_;
  // Memo replays observed by the most recent replot (guarded by the shard
  // lock, like the replot itself) — distinguishes memo-replay flights from
  // cold ones.
  uint64_t last_memo_replays_ = 0;

  // Stats. Writers are serialized (shard lock / server lock); readers are
  // any thread, hence relaxed atomics with single-writer load+store updates.
  std::atomic<uint64_t> charged_ns_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> deduped_{0};
  std::atomic<uint64_t> rejected_{0};

  // Scheduler state, guarded by the server mutex.
  size_t queued_ = 0;
  bool in_flight_ = false;
};

// Owning handle to a Session. Movable; the session disconnects (failing its
// queued work, waiting out its in-flight request) when the handle goes away.
class Client {
 public:
  // Validates `options` (fail-fast, see SessionOptions::Validate), picks a
  // shard, and attaches a new session to it.
  static vl::StatusOr<Client> Connect(Server* server, SessionOptions options = SessionOptions{});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  Session* session() { return session_.get(); }
  Session* operator->() { return session_.get(); }

 private:
  friend class Server;
  explicit Client(std::unique_ptr<Session> session) : session_(std::move(session)) {}
  std::unique_ptr<Session> session_;
};

class Server {
 public:
  explicit Server(ServerConfig config = ServerConfig{});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- shard management (control-plane) ---
  // Registers an externally owned debugger as a shard.
  vl::Status AddShard(const std::string& name, dbg::KernelDebugger* debugger);
  // Boots a self-contained shard: fresh Kernel + Workload (run for
  // `workload_steps`), a KernelDebugger over it, figure symbols registered.
  vl::Status BootShard(const std::string& name,
                       const dbg::LatencyModel& model = dbg::LatencyModel::Free(),
                       int workload_steps = 60);
  size_t shard_count() const;
  size_t session_count() const;
  dbg::KernelDebugger* shard_debugger(const std::string& name) const;
  vkern::Kernel* shard_kernel(const std::string& name) const;      // BootShard shards only
  vkern::Workload* shard_workload(const std::string& name) const;  // BootShard shards only

  // Connects a new session; SessionOptions::shard picks the shard ("" =
  // round-robin). The shard's ReadSession must agree with the session's cache
  // config: a mismatch reconfigures the shard only while it has no other
  // sessions, else Connect fails with FAILED_PRECONDITION.
  vl::StatusOr<Client> Connect(SessionOptions options = SessionOptions{});

  // --- scheduler control ---
  // Pause() holds queued refreshes (they still enqueue, up to max_queued);
  // Resume() releases them — inline servers drain on the resuming thread.
  void Pause();
  void Resume();
  // Blocks until no refresh is queued or in flight.
  void Drain();

  const ServerConfig& config() const { return config_; }

  // Aggregate + per-shard + per-session stats (the `vctrl stats` "serve"
  // section and the Prometheus export's source of truth).
  vl::Json StatsToJson() const;
  // The compiled extraction plan behind `program` as served to `session`
  // (shared shard engine, or the session's classic engine): DAG dump plus the
  // last execution's batch stats (`vctrl plan`). Null JSON when no engine has
  // run the program with plans enabled.
  vl::Json PlanJson(Session* session, const std::string& program);
  // Publishes serve.shard.* / serve.session.* / serve.flights.* gauges to the
  // global MetricsRegistry (not thread-safe — call from the control plane,
  // drained). `vctrl export prom` calls this itself (publish-on-export).
  void PublishMetrics() const;

  // --- vcheck fleet sweep (control-plane) ---
  // One shard's slice of a fleet sweep: the check report plus the charge the
  // sweep put on that shard's clock (accounted as control-plane, so flight
  // reconciliation charged_ns == control_ns + sum(service_ns) keeps holding).
  struct ShardSweep {
    std::string shard;
    analysis::CheckReport report;
    uint64_t charged_ns = 0;

    vl::Json ToJson() const;
  };
  struct SweepResult {
    std::vector<ShardSweep> shards;

    size_t violations() const;
    size_t rules_run() const;
    size_t rules_skipped() const;
    // Every shard's report reconciled with its Target::clock().
    bool reconciled() const;
    vl::Json ToJson() const;
    std::string RenderText() const;
  };
  // Runs the vcheck suite across every shard. `rule` selects one rule by ID
  // or name ("" or "all" = the full catalog); `incremental` re-runs only
  // rules whose recorded footprint is dirty (per-shard engines persist across
  // sweeps, so footprints carry over). Control-plane: call drained.
  vl::StatusOr<SweepResult> Sweep(std::string_view rule = {}, bool incremental = false);

  // The per-request flight recorder (see flight.h).
  FlightRecorder& flights() { return flights_; }
  const FlightRecorder& flights() const { return flights_; }

  // Chrome-trace JSON of the recorded flights: one track per (shard, worker),
  // flow arrows from each dedup-coalesced request to its leader, and metadata
  // reconciling summed flight service_ns against each shard's charged-ns.
  vl::Json ExportFlights() const;

  // Fleet snapshot for `vctrl top`: per-shard queue depth, inflight, dedup
  // ratio, cache hit rate, p99 service_ns.
  vl::Json TopJson() const;
  std::string TopText() const;

  // Coherently zeroes serve accounting: drains, then resets per-shard
  // transport stats (Target::ResetStats), extraction/dedup counters, result
  // cache stats, control-plane charges, session counters, and the flight
  // recorder — so post-reset ratios and reconciliation start from a clean
  // epoch. Configured SLO ceilings and cache *contents* persist.
  void ResetStats();

 private:
  friend class Session;

  struct Request {
    Session* session = nullptr;
    int pane = 0;
    std::string backend;
    vision::RenderOptions options;
    std::shared_ptr<Ticket::State> ticket;
    // Flight stamps (virtual-clock readings of the session's shard). A
    // request id of 0 means the recorder was off at submit — no stamping.
    uint64_t request_id = 0;
    uint64_t submitted_ns = 0;
    uint64_t admitted_ns = 0;
    uint64_t dequeued_ns = 0;
    size_t worker = 0;  // worker slot executing it; 0 = inline
  };

  internal::Shard* FindShard(const std::string& name) const;

  // The refresh data path (admission -> dedup -> extraction). Thread-safe.
  // Flight stamps ride on the request; completes the flight on every exit.
  vl::StatusOr<ServeResult> ExecuteRefresh(const Request& request);
  // SubmitRefresh's implementation (Ticket::State is private to Ticket and
  // Server is its only friend, so the queue path lives here).
  vl::StatusOr<Ticket> Submit(Session* session, int pane, const std::string& backend,
                              const vision::RenderOptions& options);
  // Replot through the session's engine. Caller holds the shard lock.
  vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> ReplotLocked(Session* session,
                                                                const std::string& program);
  // Serves a result-cache hit: stamps dedup accounting, a fresh sequence
  // number, and the follower/leader request ids. Caller holds the shard's
  // cache lock.
  ServeResult ServeFromCacheLocked(Session* session, internal::Shard* shard,
                                   const ServeResult& hit, uint64_t request_id);
  std::string DedupKey(Session* session, int pane, const std::string& backend,
                       const vision::RenderOptions& options) const;
  uint64_t NextSequence() { return sequence_.fetch_add(1, std::memory_order_relaxed) + 1; }

  static void Fulfill(const std::shared_ptr<Ticket::State>& ticket,
                      vl::StatusOr<ServeResult> result);
  void WorkerLoop(size_t worker);
  // Drains the queue on the calling thread (inline mode / Resume). Caller
  // must NOT hold the server mutex.
  void DrainInline();
  // First queued request whose session has nothing in flight (FIFO scan, so
  // per-session order is preserved); queue_.end() if none.
  std::deque<Request>::iterator FirstEligibleLocked();
  // Session teardown: drop its queued work, wait out its in-flight request,
  // unregister it from its shard.
  void CancelSession(Session* session);

  ServerConfig config_;

  mutable std::mutex mu_;  // shards_ / sessions_ / queue_ / scheduler state
  std::condition_variable work_cv_;     // workers wait here
  std::condition_variable drained_cv_;  // Drain()/CancelSession wait here
  std::vector<std::unique_ptr<internal::Shard>> shards_;
  std::vector<Session*> sessions_;
  std::deque<Request> queue_;
  size_t round_robin_ = 0;
  int next_session_id_ = 1;
  size_t active_ = 0;  // refreshes currently executing
  bool paused_ = false;
  bool stop_ = false;

  std::atomic<uint64_t> sequence_{0};
  std::vector<std::thread> workers_;
  FlightRecorder flights_;

  // Fleet-sweep summary for the check.fleet.* gauges (vl_check_fleet_* in the
  // Prometheus export). Single-writer (Sweep is control-plane), any reader.
  std::atomic<uint64_t> check_sweeps_{0};
  std::atomic<uint64_t> check_violations_{0};     // last sweep
  std::atomic<uint64_t> check_rules_run_{0};      // last sweep
  std::atomic<uint64_t> check_rules_skipped_{0};  // last sweep
  std::atomic<uint64_t> check_charged_ns_{0};     // cumulative sweep charge
};

}  // namespace vserve

#endif  // SRC_SERVE_SERVER_H_
