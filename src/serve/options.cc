#include "src/serve/options.h"

#include "src/support/str.h"

namespace vserve {

SessionOptions SessionOptions::Classic() { return FromCacheConfig(dbg::CacheConfig{}); }

SessionOptions SessionOptions::FromCacheConfig(const dbg::CacheConfig& config) {
  SessionOptions options;
  options.block_bytes = config.block_bytes;
  options.capacity_blocks = config.capacity_blocks;
  options.incremental = config.delta_invalidation;
  options.max_dirty_ratio = config.max_dirty_ratio;
  options.shared_engines = false;
  options.coalesce = false;
  options.compile_plans = false;  // classic = pure interpretation
  return options;
}

dbg::CacheConfig SessionOptions::ToCacheConfig() const {
  dbg::CacheConfig config;
  config.block_bytes = block_bytes;
  config.capacity_blocks = capacity_blocks;
  config.delta_invalidation = incremental;
  config.max_dirty_ratio = max_dirty_ratio;
  return config;
}

bool SameCacheConfig(const dbg::CacheConfig& a, const dbg::CacheConfig& b) {
  return a.block_bytes == b.block_bytes && a.capacity_blocks == b.capacity_blocks &&
         a.delta_invalidation == b.delta_invalidation &&
         a.max_dirty_ratio == b.max_dirty_ratio;
}

bool SessionOptions::CacheCompatibleWith(const SessionOptions& other) const {
  return SameCacheConfig(ToCacheConfig(), other.ToCacheConfig());
}

vl::DiagnosticList SessionOptions::Validate() const {
  vl::DiagnosticList diags;
  if (incremental && block_bytes == 0) {
    diags.AddRule("VS001", vl::Severity::kError, vl::Span{},
                  "incremental refresh requires a block cache (block_bytes > 0); "
                  "set incremental=false or block_bytes>=1");
  }
  if (block_bytes != 0 && capacity_blocks == 0) {
    diags.AddRule("VS002", vl::Severity::kError, vl::Span{},
                  "a block cache needs capacity_blocks > 0 "
                  "(use block_bytes=0 to disable caching entirely)");
  }
  if (max_dirty_ratio < 0.0 || max_dirty_ratio > 1.0) {
    diags.AddRule("VS003", vl::Severity::kError, vl::Span{},
                  vl::StrFormat("max_dirty_ratio must be within [0, 1], got %g",
                                max_dirty_ratio));
  }
  if (max_queued == 0) {
    diags.AddRule("VS004", vl::Severity::kError, vl::Span{},
                  "max_queued must be >= 1 (admission control needs a queue slot)");
  }
  if (shard.find('|') != std::string::npos ||
      shard.find_first_of(" \t\n") != std::string::npos) {
    diags.AddRule("VS005", vl::Severity::kError, vl::Span{},
                  "shard names may not contain '|' or whitespace "
                  "(they key stats and metrics series)");
  }
  if (block_bytes != 0 && (block_bytes & (block_bytes - 1)) != 0) {
    diags.AddRule("VS006", vl::Severity::kWarning, vl::Span{},
                  vl::StrFormat("block_bytes=%zu is rounded up to the next power of two "
                                "by the read session",
                                block_bytes));
  }
  diags.Sort();
  return diags;
}

std::string SessionOptions::ValidationText() const {
  vl::DiagnosticList diags = Validate();
  if (diags.errors() == 0) {
    return "";
  }
  std::string out;
  for (const vl::Diagnostic& d : diags.diags()) {
    out += vl::StrFormat("%s[%s]: %s\n", std::string(vl::SeverityName(d.severity)).c_str(),
                         d.rule.c_str(), d.message.c_str());
  }
  return out;
}

}  // namespace vserve
