#include "src/serve/result_cache.h"

namespace vserve {

const ServeResult* ResultCache::Find(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses++;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits++;
  return &it->second->result;
}

void ResultCache::Insert(const std::string& key, ServeResult result) {
  if (capacity_ == 0) {
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  entries_[key] = lru_.begin();
  stats_.insertions++;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    stats_.evictions++;
  }
}

void ResultCache::Clear() {
  lru_.clear();
  entries_.clear();
}

vl::Json ResultCache::StatsToJson() const {
  vl::Json j = vl::Json::Object();
  j["entries"] = vl::Json::Int(static_cast<int64_t>(entries_.size()));
  j["capacity"] = vl::Json::Int(static_cast<int64_t>(capacity_));
  j["hits"] = vl::Json::Int(static_cast<int64_t>(stats_.hits));
  j["misses"] = vl::Json::Int(static_cast<int64_t>(stats_.misses));
  j["insertions"] = vl::Json::Int(static_cast<int64_t>(stats_.insertions));
  j["evictions"] = vl::Json::Int(static_cast<int64_t>(stats_.evictions));
  return j;
}

}  // namespace vserve
