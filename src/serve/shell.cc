#include "src/serve/shell.h"

#include <cassert>
#include <fstream>

#include "src/analysis/lint.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"
#include "src/viewcl/synthesize.h"

namespace vserve {

namespace {

// Splits "first rest..." on the first whitespace run.
std::pair<std::string, std::string> SplitFirst(std::string_view text) {
  text = vl::StrTrim(text);
  size_t space = text.find_first_of(" \t\n");
  if (space == std::string_view::npos) {
    return {std::string(text), ""};
  }
  return {std::string(text.substr(0, space)),
          std::string(vl::StrTrim(text.substr(space + 1)))};
}

}  // namespace

DebuggerShell::DebuggerShell(Session* session) : session_(session) {}

DebuggerShell::DebuggerShell(dbg::KernelDebugger* debugger)
    : owned_server_(std::make_unique<Server>()) {
  vl::Status added = owned_server_->AddShard("local", debugger);
  assert(added.ok());
  (void)added;
  // Adopt the debugger's existing cache config (classic engine, no dedup) so
  // the shim changes nothing about single-user behavior.
  auto client =
      owned_server_->Connect(SessionOptions::FromCacheConfig(debugger->session().config()));
  assert(client.ok());
  owned_client_.emplace(std::move(client).value());
  session_ = owned_client_->session();
}

std::string DebuggerShell::Execute(const std::string& line) {
  auto [command, args] = SplitFirst(line);
  if (command == "vplot") {
    return CmdVplot(args);
  }
  if (command == "vctrl") {
    return CmdVctrl(args);
  }
  if (command == "vchat") {
    return CmdVchat(args);
  }
  if (command == "vprof") {
    return CmdVprof(args);
  }
  if (command == "help" || command.empty()) {
    return "commands: vplot <pane> [--auto <type> <expr>] <viewcl> | "
           "vctrl split|apply|lint|check|focus|view|dot|json|layout|save|stats|trace|"
           "explain|plan|refresh|watch|budget|flights|top|slo|export | "
           "vprof <pane> <viewcl> | "
           "vchat <pane> <request>\n";
  }
  return "error: unknown command '" + command + "' (try 'help')\n";
}

std::string DebuggerShell::CmdVplot(const std::string& args) {
  auto [pane_text, program] = SplitFirst(args);
  int64_t pane_id = 0;
  if (!vl::ParseInt64(pane_text, &pane_id) || program.empty()) {
    return "usage: vplot <pane> <viewcl program>\n"
           "       vplot <pane> --auto <type> <root c-expression>\n";
  }
  std::string synthesized_note;
  if (program.substr(0, 6) == "--auto") {
    // Naive ViewCL synthesis for trivial objectives (paper 4).
    auto [flag, rest] = SplitFirst(program);
    auto [type_name, root_expr] = SplitFirst(rest);
    if (type_name.empty() || root_expr.empty()) {
      return "usage: vplot <pane> --auto <type> <root c-expression>\n";
    }
    auto generated = viewcl::SynthesizeViewCl(dbg()->types(), type_name, root_expr);
    if (!generated.ok()) {
      return "error: " + generated.status().ToString() + "\n";
    }
    synthesized_note = "synthesized ViewCL:\n" + *generated;
    program = *generated;
  }
  (void)synthesized_note;
  auto plotted = session_->Plot(static_cast<int>(pane_id), program);
  if (!plotted.ok()) {
    return "error: " + plotted.status().ToString() + "\n";
  }
  std::string out = synthesized_note +
                    vl::StrFormat("plotted %zu boxes into pane %d\n", plotted->boxes,
                                  static_cast<int>(pane_id));
  for (const std::string& warning : plotted->warnings) {
    out += "warning: " + warning + "\n";
  }
  return out;
}

std::string DebuggerShell::CmdVctrl(const std::string& args) {
  auto [sub, rest] = SplitFirst(args);
  if (sub == "split") {
    auto [pane_text, dir_text] = SplitFirst(rest);
    int64_t pane_id = 0;
    if (!vl::ParseInt64(pane_text, &pane_id) || dir_text.empty()) {
      return "usage: vctrl split <pane> h|v\n";
    }
    auto new_id = session_->Split(static_cast<int>(pane_id), dir_text[0]);
    if (!new_id.ok()) {
      return "error: " + new_id.status().ToString() + "\n";
    }
    return vl::StrFormat("created pane %d\n", *new_id);
  }
  if (sub == "apply") {
    auto [pane_text, viewql] = SplitFirst(rest);
    int64_t pane_id = 0;
    if (!vl::ParseInt64(pane_text, &pane_id) || viewql.empty()) {
      return "usage: vctrl apply <pane> <viewql>\n";
    }
    vl::Status status = session_->Apply(static_cast<int>(pane_id), viewql);
    if (!status.ok()) {
      return "error: " + status.ToString() + "\n";
    }
    return "applied\n";
  }
  if (sub == "lint") {
    return CmdLint(rest);
  }
  if (sub == "check") {
    return CmdCheck(rest);
  }
  if (sub == "focus") {
    auto [what, value_text] = SplitFirst(rest);
    std::vector<vision::FocusHit> hits;
    if (what == "addr") {
      int64_t addr = 0;
      if (!vl::ParseInt64(value_text, &addr)) {
        return "usage: vctrl focus addr <hex address>\n";
      }
      hits = panes().FocusAddress(static_cast<uint64_t>(addr));
    } else {
      int64_t value = 0;
      if (what.empty() || !vl::ParseInt64(value_text, &value)) {
        return "usage: vctrl focus <member> <value>\n";
      }
      hits = panes().FocusMember(what, value);
    }
    if (hits.empty()) {
      return "no matches\n";
    }
    std::string out;
    for (const vision::FocusHit& hit : hits) {
      out += vl::StrFormat("pane %d: box #%llu\n", hit.pane_id,
                           static_cast<unsigned long long>(hit.box_id));
    }
    return out;
  }
  if (sub == "view") {
    auto [pane_text, backend] = SplitFirst(rest);
    int64_t pane_id = 0;
    if (!vl::ParseInt64(pane_text, &pane_id)) {
      return "usage: vctrl view <pane> [" +
             vl::StrJoin(vision::RendererBackends(), "|") + "]\n";
    }
    if (backend.empty()) {
      backend = "ascii";
    }
    return session_->Render(static_cast<int>(pane_id), vision::RenderOptions{}, backend);
  }
  // `vctrl dot|json <pane>` are kept as aliases for `vctrl view <pane> <backend>`.
  if (sub == "dot" || sub == "json") {
    int64_t pane_id = 0;
    if (!vl::ParseInt64(rest, &pane_id)) {
      return "usage: vctrl " + sub + " <pane>\n";
    }
    std::string out =
        session_->Render(static_cast<int>(pane_id), vision::RenderOptions{}, sub);
    if (sub == "json" && !out.empty() && out.back() != '\n') {
      out += "\n";
    }
    return out;
  }
  if (sub == "layout") {
    return panes().LayoutAscii();
  }
  if (sub == "save") {
    return panes().SaveState().Dump(2) + "\n";
  }
  if (sub == "stats") {
    return CmdStats(rest);
  }
  if (sub == "trace") {
    return CmdTrace(rest);
  }
  if (sub == "explain") {
    return CmdExplain(rest);
  }
  if (sub == "plan") {
    return CmdPlan(rest);
  }
  if (sub == "refresh") {
    return CmdRefresh(rest);
  }
  if (sub == "watch") {
    return CmdWatch(rest);
  }
  if (sub == "budget") {
    return CmdBudget(rest);
  }
  if (sub == "export") {
    return CmdExport(rest);
  }
  if (sub == "flights") {
    return CmdFlights(rest);
  }
  if (sub == "top") {
    return CmdTop(rest);
  }
  if (sub == "slo") {
    return CmdSlo(rest);
  }
  return "usage: vctrl split|apply|focus|view|layout|save|stats|trace|"
         "explain|plan|refresh|watch|budget|flights|top|slo|check|export ...\n";
}

std::string DebuggerShell::CmdCheck(const std::string& args) {
  std::string rule;
  bool incremental = false;
  bool json = false;
  std::string remaining = args;
  while (true) {
    auto [token, rest] = SplitFirst(remaining);
    if (token.empty()) {
      break;
    }
    if (token == "json") {
      json = true;
    } else if (token == "incremental" || token == "inc") {
      incremental = true;
    } else if (token == "list") {
      std::string out;
      for (const analysis::CheckRuleInfo& info : analysis::CheckEngine::Catalog()) {
        out += vl::StrFormat("%s  %-20s %s\n", info.id, info.name, info.description);
      }
      return out;
    } else if (rule.empty()) {
      rule = token;
    } else {
      return "usage: vctrl check [rule|all|list] [incremental] [json]\n";
    }
    remaining = rest;
  }
  auto sweep = session_->server()->Sweep(rule, incremental);
  if (!sweep.ok()) {
    return "error: " + sweep.status().ToString() + "\n";
  }
  if (json) {
    return sweep->ToJson().Dump(2) + "\n";
  }
  return sweep->RenderText();
}

vl::Json DebuggerShell::StatsJson() const {
  vl::Json j = vl::Json::Object();
  if (dbg() != nullptr) {
    j["target"] = dbg()->target().StatsToJson();
    j["cache"] = dbg()->session().StatsToJson();
  }
  vision::PaneManager& panes = session_->panes();
  vl::Json jpanes = vl::Json::Object();
  for (int id : panes.pane_ids()) {
    const viewql::ExecStats* stats = panes.exec_stats(id);
    if (stats != nullptr && stats->statements > 0) {
      jpanes[vl::StrFormat("%d", id)] = stats->ToJson();
    }
  }
  j["panes"] = std::move(jpanes);
  vl::Tracer& tracer = vl::Tracer::Instance();
  vl::Json jtracer = vl::Json::Object();
  jtracer["enabled"] = vl::Json::Bool(tracer.enabled());
  jtracer["recorded"] = vl::Json::Int(static_cast<int64_t>(tracer.recorded()));
  jtracer["dropped"] = vl::Json::Int(static_cast<int64_t>(tracer.dropped()));
  j["tracer"] = std::move(jtracer);
  j["metrics"] = vl::MetricsRegistry::Instance().ToJson();
  j["serve"] = session_->StatsToJson();
  // The server-wide view: per-shard extraction/dedup counters, control_ns,
  // and the per-shard queue/service/total flight decomposition.
  j["fleet"] = session_->server()->StatsToJson();
  // vcheck sweep accounting, fed by the check.* counter family.
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  vl::Json check = vl::Json::Object();
  check["sweeps"] = vl::Json::Int(metrics.GetCounter("check.sweeps")->value());
  check["rules_run"] = vl::Json::Int(metrics.GetCounter("check.rules.run")->value());
  check["violations"] = vl::Json::Int(metrics.GetCounter("check.violations")->value());
  check["reads"] = vl::Json::Int(metrics.GetCounter("check.reads")->value());
  check["read_bytes"] = vl::Json::Int(metrics.GetCounter("check.read_bytes")->value());
  check["charged_ns"] = vl::Json::Int(metrics.GetCounter("check.charged_ns")->value());
  vl::Json inc = vl::Json::Object();
  inc["sweeps"] = vl::Json::Int(metrics.GetCounter("check.incremental.sweeps")->value());
  inc["skipped"] = vl::Json::Int(metrics.GetCounter("check.incremental.skipped")->value());
  inc["reran"] = vl::Json::Int(metrics.GetCounter("check.incremental.reran")->value());
  check["incremental"] = std::move(inc);
  j["check"] = std::move(check);
  // Extraction-plan accounting, fed by the plan.* / read.vector.* families.
  vl::Json plan = vl::Json::Object();
  plan["compiles"] = vl::Json::Int(metrics.GetCounter("plan.compiles")->value());
  plan["cache_hits"] = vl::Json::Int(metrics.GetCounter("plan.cache_hits")->value());
  plan["executions"] = vl::Json::Int(metrics.GetCounter("plan.executions")->value());
  plan["wavefronts"] = vl::Json::Int(metrics.GetCounter("plan.wavefronts")->value());
  plan["batches"] = vl::Json::Int(metrics.GetCounter("plan.batches")->value());
  plan["batched_reads"] = vl::Json::Int(metrics.GetCounter("read.vector.spans")->value());
  plan["avoided_round_trips"] =
      vl::Json::Int(metrics.GetCounter("read.vector.avoided_round_trips")->value());
  plan["parallel_wavefronts"] =
      vl::Json::Int(metrics.GetCounter("plan.parallel_wavefronts")->value());
  plan["steered_skips"] = vl::Json::Int(metrics.GetCounter("plan.steered_skips")->value());
  plan["soft_errors"] = vl::Json::Int(metrics.GetCounter("plan.soft_errors")->value());
  j["plan"] = std::move(plan);
  return j;
}

std::string DebuggerShell::CmdStats(const std::string& args) {
  if (vl::StrTrim(args) == "json") {
    return StatsJson().Dump(2) + "\n";
  }
  std::string out;
  if (dbg() != nullptr) {
    const dbg::Target& target = dbg()->target();
    out += vl::StrFormat("target: model=%s clock=%llu ns (%.3f ms) reads=%llu bytes=%llu\n",
                         target.model().name.c_str(),
                         static_cast<unsigned long long>(target.clock().nanos()),
                         target.clock().millis(),
                         static_cast<unsigned long long>(target.reads()),
                         static_cast<unsigned long long>(target.bytes_read()));
    for (const auto& [name, stats] : target.per_model_stats()) {
      out += vl::StrFormat("  %-16s %llu ns, %llu reads, %llu bytes\n", name.c_str(),
                           static_cast<unsigned long long>(stats.charged_ns),
                           static_cast<unsigned long long>(stats.reads),
                           static_cast<unsigned long long>(stats.bytes));
    }
    const dbg::ReadSession& session = dbg()->session();
    const dbg::CacheStats& cache = session.cache_stats();
    out += vl::StrFormat(
        "cache: %s block=%zu B, %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu blocks cached, %llu evictions, %llu invalidations\n",
        session.cache_enabled() ? "on" : "off", session.config().block_bytes,
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses), cache.HitRate() * 100.0,
        static_cast<unsigned long long>(session.cached_blocks()),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.invalidations));
    const dbg::Target::DirtyStats dirty = target.dirty_stats();
    if (session.delta_enabled() || dirty.queries > 0) {
      out += vl::StrFormat(
          "  delta: %s, %llu delta / %llu full invalidations "
          "(%llu B delta, %llu B full), %llu delta prefetches\n",
          session.delta_enabled() ? "on" : "off",
          static_cast<unsigned long long>(cache.delta_invalidations),
          static_cast<unsigned long long>(cache.invalidations),
          static_cast<unsigned long long>(cache.invalidated_bytes_delta),
          static_cast<unsigned long long>(cache.invalidated_bytes_full),
          static_cast<unsigned long long>(cache.delta_prefetches));
      out += vl::StrFormat(
          "  dirty-log: %llu queries, %llu pages scanned, %llu dirty, %llu ns charged\n",
          static_cast<unsigned long long>(dirty.queries),
          static_cast<unsigned long long>(dirty.pages_scanned),
          static_cast<unsigned long long>(dirty.pages_dirty),
          static_cast<unsigned long long>(dirty.charged_ns));
    }
  }
  for (int id : panes().pane_ids()) {
    const viewql::ExecStats* stats = panes().exec_stats(id);
    if (stats == nullptr || stats->statements == 0) {
      continue;
    }
    out += vl::StrFormat(
        "pane %d: %d viewql statements (%d select, %d update), "
        "%llu boxes updated, %llu ns select, %llu ns update\n",
        id, stats->statements, stats->selects, stats->updates,
        static_cast<unsigned long long>(stats->boxes_updated),
        static_cast<unsigned long long>(stats->select_ns),
        static_cast<unsigned long long>(stats->update_ns));
  }
  vl::Tracer& tracer = vl::Tracer::Instance();
  out += vl::StrFormat("tracer: %s, %llu spans recorded, %llu dropped\n",
                       tracer.enabled() ? "on" : "off",
                       static_cast<unsigned long long>(tracer.recorded()),
                       static_cast<unsigned long long>(tracer.dropped()));
  out += vl::StrFormat(
      "serve: session %d on shard %s, %llu requests "
      "(%llu executed, %llu deduped, %llu rejected), %llu ns charged\n",
      session_->id(), session_->shard_name().c_str(),
      static_cast<unsigned long long>(session_->requests()),
      static_cast<unsigned long long>(session_->executed()),
      static_cast<unsigned long long>(session_->deduped()),
      static_cast<unsigned long long>(session_->rejected()),
      static_cast<unsigned long long>(session_->charged_ns()));
  FlightStats flights = session_->server()->flights().SessionStats(session_->id());
  if (flights.completed > 0 || flights.rejected > 0) {
    out += vl::StrFormat(
        "flights: %llu completed (%llu rejected), queue p50=%.0f p99=%.0f ns, "
        "service p50=%.0f p99=%.0f ns\n",
        static_cast<unsigned long long>(flights.completed),
        static_cast<unsigned long long>(flights.rejected),
        flights.queue_ns.ApproxQuantile(0.50), flights.queue_ns.ApproxQuantile(0.99),
        flights.service_ns.ApproxQuantile(0.50),
        flights.service_ns.ApproxQuantile(0.99));
  }
  vl::MetricsRegistry& registry = vl::MetricsRegistry::Instance();
  if (registry.GetCounter("check.sweeps")->value() > 0) {
    out += vl::StrFormat(
        "check: %lld sweep(s), %lld rule(s) run, %lld violation(s), "
        "%lld reads (%lld ns charged), %lld incremental skip(s)\n",
        static_cast<long long>(registry.GetCounter("check.sweeps")->value()),
        static_cast<long long>(registry.GetCounter("check.rules.run")->value()),
        static_cast<long long>(registry.GetCounter("check.violations")->value()),
        static_cast<long long>(registry.GetCounter("check.reads")->value()),
        static_cast<long long>(registry.GetCounter("check.charged_ns")->value()),
        static_cast<long long>(registry.GetCounter("check.incremental.skipped")->value()));
  }
  if (registry.GetCounter("plan.compiles")->value() > 0 ||
      registry.GetCounter("read.vector.batches")->value() > 0) {
    out += vl::StrFormat(
        "plan: %lld compiled, %lld cache hit(s), %lld wavefront(s), "
        "%lld batch(es), %lld batched read(s), %lld round trip(s) avoided\n",
        static_cast<long long>(registry.GetCounter("plan.compiles")->value()),
        static_cast<long long>(registry.GetCounter("plan.cache_hits")->value()),
        static_cast<long long>(registry.GetCounter("plan.wavefronts")->value()),
        static_cast<long long>(registry.GetCounter("plan.batches")->value()),
        static_cast<long long>(registry.GetCounter("read.vector.spans")->value()),
        static_cast<long long>(
            registry.GetCounter("read.vector.avoided_round_trips")->value()));
  }
  std::string metrics = registry.TextReport();
  if (!metrics.empty()) {
    out += metrics;
  }
  return out;
}

std::string DebuggerShell::CmdTrace(const std::string& args) {
  auto [verb, rest] = SplitFirst(args);
  vl::Tracer& tracer = vl::Tracer::Instance();
  if (verb == "on") {
    tracer.Enable();
    return "tracing on\n";
  }
  if (verb == "off") {
    tracer.Disable();
    return "tracing off\n";
  }
  if (verb == "clear") {
    tracer.Clear();
    vl::MetricsRegistry::Instance().Reset();
    return "trace cleared\n";
  }
  if (verb == "dump") {
    if (rest.empty()) {
      return "usage: vctrl trace dump <file>\n";
    }
    std::ofstream file(rest);
    if (!file) {
      return "error: cannot open '" + rest + "'\n";
    }
    file << tracer.ToChromeJson().Dump(2) << "\n";
    return vl::StrFormat("wrote %llu spans to %s\n",
                         static_cast<unsigned long long>(tracer.Snapshot().size()),
                         rest.c_str());
  }
  return "usage: vctrl trace on|off|clear|dump <file>\n";
}

std::string DebuggerShell::CmdExplain(const std::string& args) {
  auto [pane_text, mode] = SplitFirst(args);
  int64_t pane_id = 0;
  if (!vl::ParseInt64(pane_text, &pane_id)) {
    return "usage: vctrl explain <pane> [json]\n";
  }

  // Fresh tree-mode trace around one full refresh: afterwards the tree's
  // root totals partition the refresh's clock delta exactly (the vprof
  // reconciliation invariant, extended to per-node attribution). This
  // deliberately calls RefreshPane directly (not Session::Refresh): the
  // serve dedup path could satisfy the refresh from cache, which would
  // attribute nothing.
  vl::Tracer& tracer = vl::Tracer::Instance();
  bool was_enabled = tracer.enabled();
  tracer.Clear();
  tracer.SetTreeEnabled(true);
  tracer.Enable();
  uint64_t clock_before = dbg() != nullptr ? dbg()->target().clock().nanos() : 0;
  auto result = panes().RefreshPane(static_cast<int>(pane_id), session_->MakeReplotFn());
  uint64_t clock_after = dbg() != nullptr ? dbg()->target().clock().nanos() : 0;
  tracer.SetTreeEnabled(false);  // freeze the tree for rendering below
  if (!was_enabled) {
    tracer.Disable();
  }
  if (!result.ok()) {
    return "error: " + result.status().ToString() + "\n";
  }

  uint64_t clock_delta = clock_after - clock_before;
  uint64_t tree_total = 0;
  for (const auto& [name, node] : tracer.tree_root().children) {
    tree_total += node.total_ns;
  }
  bool reconciled = tree_total == clock_delta;

  if (vl::StrTrim(mode) == "json") {
    vl::Json j = vl::Json::Object();
    j["pane"] = vl::Json::Int(pane_id);
    j["boxes"] = vl::Json::Int(static_cast<int64_t>(result->boxes));
    j["epoch"] = vl::Json::Int(static_cast<int64_t>(result->epoch));
    j["clock_ns"] = vl::Json::Int(static_cast<int64_t>(clock_delta));
    j["reconciled"] = vl::Json::Bool(reconciled);
    j["tree"] = tracer.TreeToJson();
    return j.Dump(2) + "\n";
  }
  std::string out = vl::StrFormat("explain pane %d: %zu boxes, epoch %llu\n",
                                  static_cast<int>(pane_id), result->boxes,
                                  static_cast<unsigned long long>(result->epoch));
  out += tracer.TreeText();
  out += vl::StrFormat("clock: %llu virtual ns, tree total: %llu ns%s\n",
                       static_cast<unsigned long long>(clock_delta),
                       static_cast<unsigned long long>(tree_total),
                       reconciled ? " (exact)" : " (MISMATCH)");
  for (const std::string& key : result->violations) {
    out += "budget violation: " + key + "\n";
  }
  return out;
}

std::string DebuggerShell::CmdPlan(const std::string& args) {
  auto [pane_text, mode] = SplitFirst(args);
  int64_t pane_id = 0;
  if (!vl::ParseInt64(pane_text, &pane_id)) {
    return "usage: vctrl plan <pane> [json]\n";
  }
  std::string program = panes().program_text(static_cast<int>(pane_id));
  if (program.empty()) {
    return vl::StrFormat("error: pane %d has no program\n", static_cast<int>(pane_id));
  }
  vl::Json plan = session_->server()->PlanJson(session_, program);
  if (plan.is_null()) {
    return vl::StrFormat(
        "pane %d: no extraction plan (plans disabled for this session, or the "
        "program has not run yet)\n",
        static_cast<int>(pane_id));
  }
  if (vl::StrTrim(mode) == "json") {
    return plan.Dump(2) + "\n";
  }
  if (!plan["blocked"].is_null() && plan["blocked"].AsBool()) {
    return vl::StrFormat(
        "pane %d: plan blocked (linter diagnosed the program; classic "
        "interpretation path)\n",
        static_cast<int>(pane_id));
  }
  vl::Json& last = plan["last_exec"];
  std::string out = vl::StrFormat(
      "plan pane %d: %s, %lld box decl(s), %lld fallback op(s), %lld "
      "execution(s)\n",
      static_cast<int>(pane_id),
      plan["complete"].AsBool() ? "complete" : "partial",
      static_cast<long long>(plan["boxes"].size()),
      static_cast<long long>(plan["fallback_ops"].AsInt()),
      static_cast<long long>(plan["executions"].AsInt()));
  out += vl::StrFormat(
      "last exec: %lld wavefront(s), %lld batch(es), %lld span(s) (%lld B), "
      "%lld box(es), %lld step(s)\n",
      static_cast<long long>(last["wavefronts"].AsInt()),
      static_cast<long long>(last["batches"].AsInt()),
      static_cast<long long>(last["spans"].AsInt()),
      static_cast<long long>(last["span_bytes"].AsInt()),
      static_cast<long long>(last["boxes"].AsInt()),
      static_cast<long long>(last["steps"].AsInt()));
  out += vl::StrFormat(
      "  %lld parallel wavefront(s), %lld steered skip(s), %lld soft "
      "error(s)\n",
      static_cast<long long>(last["parallel_wavefronts"].AsInt()),
      static_cast<long long>(last["steered_skips"].AsInt()),
      static_cast<long long>(last["soft_errors"].AsInt()));
  return out;
}

std::string DebuggerShell::CmdRefresh(const std::string& args) {
  int64_t pane_id = 0;
  if (!vl::ParseInt64(vl::StrTrim(args), &pane_id)) {
    return "usage: vctrl refresh <pane>\n";
  }
  auto result = session_->Refresh(static_cast<int>(pane_id));
  if (!result.ok()) {
    return "error: " + result.status().ToString() + "\n";
  }
  std::string out = vl::StrFormat(
      "refreshed pane %d: %zu boxes, %llu virtual ns, epoch %llu%s\n",
      static_cast<int>(pane_id), result->boxes,
      static_cast<unsigned long long>(result->refresh_ns),
      static_cast<unsigned long long>(result->epoch),
      result->deduped ? " (deduped)" : "");
  for (const std::string& key : result->violations) {
    out += "budget violation: " + key + "\n";
  }
  return out;
}

std::string DebuggerShell::CmdWatch(const std::string& args) {
  auto [what, mode] = SplitFirst(args);
  if (what == "on") {
    recorder().Enable();
    return "watch on\n";
  }
  if (what == "off") {
    recorder().Disable();
    return "watch off\n";
  }
  if (what == "clear") {
    recorder().Clear();
    return "watch cleared\n";
  }
  int64_t pane_id = 0;
  if (!vl::ParseInt64(what, &pane_id)) {
    return "usage: vctrl watch on|off|clear|<pane> [json]\n";
  }
  std::string refresh_key = vl::StrFormat("pane.%d", static_cast<int>(pane_id));
  std::string render_key = refresh_key + ".render";
  if (vl::StrTrim(mode) == "json") {
    vl::Json j = vl::Json::Object();
    if (recorder().Find(refresh_key) != nullptr) {
      j[refresh_key] = recorder().SeriesToJson(refresh_key);
    }
    if (recorder().Find(render_key) != nullptr) {
      j[render_key] = recorder().SeriesToJson(render_key);
    }
    return j.Dump(2) + "\n";
  }
  std::string out;
  if (recorder().Find(refresh_key) != nullptr) {
    out += recorder().TextReport(refresh_key);
  }
  if (recorder().Find(render_key) != nullptr) {
    out += recorder().TextReport(render_key);
  }
  if (out.empty()) {
    out = vl::StrFormat("(no samples for pane %d; is watch on?)\n",
                        static_cast<int>(pane_id));
  }
  return out;
}

std::string DebuggerShell::CmdBudget(const std::string& args) {
  auto [verb, rest] = SplitFirst(args);
  if (verb == "set") {
    auto [key_text, ns_text] = SplitFirst(rest);
    int64_t budget_ns = 0;
    if (key_text.empty() || !vl::ParseInt64(ns_text, &budget_ns) || budget_ns < 0) {
      return "usage: vctrl budget set <pane#|span-name> <ns>\n";
    }
    // A bare pane number means "budget that pane's whole refresh".
    int64_t pane_id = 0;
    std::string key = vl::ParseInt64(key_text, &pane_id)
                          ? vl::StrFormat("pane.%d", static_cast<int>(pane_id))
                          : key_text;
    budgets().Set(key, static_cast<uint64_t>(budget_ns));
    return vl::StrFormat("budget %s = %llu ns\n", key.c_str(),
                         static_cast<unsigned long long>(budget_ns));
  }
  if (verb == "clear") {
    budgets().ClearBudgets();
    budgets().ClearViolations();
    return "budgets cleared\n";
  }
  if (verb == "list") {
    std::string out = vl::StrFormat("budgets (%s):\n",
                                    budgets().enabled() ? "enabled" : "disabled");
    if (budgets().budgets().empty()) {
      out += "  (none)\n";
    }
    for (const auto& [key, budget_ns] : budgets().budgets()) {
      out += vl::StrFormat("  %-24s %llu ns\n", key.c_str(),
                           static_cast<unsigned long long>(budget_ns));
    }
    return out;
  }
  if (verb == "report") {
    if (vl::StrTrim(rest) == "json") {
      return budgets().ReportJson().Dump(2) + "\n";
    }
    return budgets().ReportText();
  }
  if (verb == "on") {
    budgets().Enable();
    return "budgets on\n";
  }
  if (verb == "off") {
    budgets().Disable();
    return "budgets off\n";
  }
  return "usage: vctrl budget set <pane#|span-name> <ns> | clear | list | "
         "report [json] | on | off\n";
}

std::string DebuggerShell::CmdExport(const std::string& args) {
  auto [format, path] = SplitFirst(args);
  std::string content;
  if (format == "prom") {
    // Publish-on-export: the serve gauges are refreshed right here, so the
    // exposition always carries current vl_serve_* values without the caller
    // having to remember Server::PublishMetrics().
    session_->server()->PublishMetrics();
    content = vl::MetricsRegistry::Instance().ToPrometheus();
  } else if (format == "folded") {
    content = vl::Tracer::Instance().ToFolded();
  } else if (format == "chrome") {
    // The merged timeline: the span tracer's pid-1 track plus one process
    // per shard of flight tracks, with dedup flow arrows.
    vl::Json doc = vl::Tracer::Instance().ToChromeJson();
    vl::Json flights = session_->server()->ExportFlights();
    if (const vl::Json* events = flights.Find("traceEvents")) {
      for (const vl::Json& event : events->items()) {
        doc["traceEvents"].Append(event);
      }
    }
    if (const vl::Json* meta = flights.Find("metadata")) {
      doc["metadata"]["serve"] = *meta;
    }
    content = doc.Dump(2) + "\n";
  } else if (format == "flights") {
    content = session_->server()->ExportFlights().Dump(2) + "\n";
  } else {
    return "usage: vctrl export prom|folded|chrome|flights [path]\n";
  }
  if (path.empty()) {
    return content;
  }
  std::ofstream file(path);
  if (!file) {
    return "error: cannot open '" + path + "'\n";
  }
  file << content;
  return vl::StrFormat("wrote %zu bytes to %s\n", content.size(), path.c_str());
}

// vctrl flights [n] [json] — the most recent n flight records (default 16).
std::string DebuggerShell::CmdFlights(const std::string& args) {
  auto [first, second] = SplitFirst(args);
  int64_t n = 16;
  bool json = false;
  for (const std::string& word : {first, second}) {
    if (word.empty()) {
      continue;
    }
    if (word == "json") {
      json = true;
    } else if (!vl::ParseInt64(word, &n) || n <= 0) {
      return "usage: vctrl flights [n] [json]\n";
    }
  }
  FlightRecorder& flights = session_->server()->flights();
  if (json) {
    return flights.ToJson(static_cast<size_t>(n)).Dump(2) + "\n";
  }
  return flights.Table(static_cast<size_t>(n));
}

std::string DebuggerShell::CmdTop(const std::string& args) {
  if (vl::StrTrim(args) == "json") {
    return session_->server()->TopJson().Dump(2) + "\n";
  }
  return session_->server()->TopText();
}

// vctrl slo set queue|service|total <ns> | report [json] | clear — fleet SLO
// ceilings on the flight decomposition (distinct from `vctrl budget`, which
// watches this session's pane refreshes).
std::string DebuggerShell::CmdSlo(const std::string& args) {
  auto [verb, rest] = SplitFirst(args);
  FlightRecorder& flights = session_->server()->flights();
  if (verb == "set") {
    auto [kind, ns_text] = SplitFirst(rest);
    int64_t slo_ns = 0;
    if ((kind != "queue" && kind != "service" && kind != "total") ||
        !vl::ParseInt64(ns_text, &slo_ns) || slo_ns < 0) {
      return "usage: vctrl slo set queue|service|total <ns>\n";
    }
    flights.SetSlo(kind, static_cast<uint64_t>(slo_ns));
    return vl::StrFormat("slo %s_ns = %llu ns\n", kind.c_str(),
                         static_cast<unsigned long long>(slo_ns));
  }
  if (verb == "report") {
    if (vl::StrTrim(rest) == "json") {
      return flights.SloReportJson().Dump(2) + "\n";
    }
    return flights.SloReportText();
  }
  if (verb == "clear") {
    flights.ClearSlo();
    return "slo ceilings cleared\n";
  }
  return "usage: vctrl slo set queue|service|total <ns> | report [json] | clear\n";
}

std::string DebuggerShell::CmdVprof(const std::string& args) {
  auto [pane_text, program] = SplitFirst(args);
  int64_t pane_id = 0;
  if (!vl::ParseInt64(pane_text, &pane_id) || program.empty()) {
    return "usage: vprof <pane> <viewcl program>\n";
  }
  vl::Tracer& tracer = vl::Tracer::Instance();
  bool was_enabled = tracer.enabled();
  tracer.Clear();
  vl::MetricsRegistry::Instance().Reset();
  tracer.Enable();
  if (dbg() != nullptr) {
    dbg()->target().ResetStats();
  }

  vl::Status run_status = vl::Status::Ok();
  size_t boxes = 0;
  {
    // Everything inside this root span: after it closes, the self times of
    // all spans sum exactly to its duration — the target clock delta.
    vl::ScopedSpan root("vprof");
    auto graph = session_->RunProgram(program);
    if (!graph.ok()) {
      run_status = graph.status();
    } else {
      boxes = (*graph)->size();
      run_status =
          panes().SetGraph(static_cast<int>(pane_id), std::move(graph).value(), program);
      if (run_status.ok()) {
        panes().RenderPane(static_cast<int>(pane_id));  // profile render too
      }
    }
  }
  if (!was_enabled) {
    tracer.Disable();
  }
  if (!run_status.ok()) {
    return "error: " + run_status.ToString() + "\n";
  }

  uint64_t clock_ns = dbg() != nullptr ? dbg()->target().clock().nanos() : 0;
  uint64_t self_ns = tracer.TotalSelfNanos();
  std::string out = vl::StrFormat("vprof pane %d: %zu boxes\n",
                                  static_cast<int>(pane_id), boxes);
  out += tracer.TextReport(10);
  out += vl::StrFormat("clock: %llu virtual ns, trace self total: %llu ns%s\n",
                       static_cast<unsigned long long>(clock_ns),
                       static_cast<unsigned long long>(self_ns),
                       clock_ns == self_ns ? " (exact)" : " (MISMATCH)");
  return out;
}

// vctrl lint <file|pane> [json] — static-check a ViewCL file (.vql = ViewQL)
// or a pane's accumulated programs without touching target memory.
std::string DebuggerShell::CmdLint(const std::string& args) {
  auto [target, mode] = SplitFirst(args);
  if (target.empty() || (!mode.empty() && mode != "json")) {
    return "usage: vctrl lint <file|pane> [json]\n";
  }
  bool json = mode == "json";
  analysis::Linter linter(&dbg()->types(), &dbg()->symbols(), &dbg()->helpers(),
                          &session_->emoji());

  struct LintJob {
    std::string name;
    std::string source;
    bool is_viewql = false;
  };
  std::vector<LintJob> jobs;
  analysis::ProgramSummary summary;

  int64_t pane_id = 0;
  if (vl::ParseInt64(target, &pane_id)) {
    std::string program = panes().program_text(static_cast<int>(pane_id));
    if (program.empty()) {
      return vl::StrFormat("error: pane %d has no ViewCL program to lint\n",
                           static_cast<int>(pane_id));
    }
    jobs.push_back({vl::StrFormat("pane %d", static_cast<int>(pane_id)), program, false});
    summary = linter.SummarizeViewCl(program);
    const std::vector<std::string>* history =
        panes().viewql_history(static_cast<int>(pane_id));
    if (history != nullptr) {
      for (size_t i = 0; i < history->size(); ++i) {
        jobs.push_back({vl::StrFormat("pane %d viewql[%zu]", static_cast<int>(pane_id), i),
                        (*history)[i], true});
      }
    }
  } else {
    std::ifstream in(target, std::ios::binary);
    if (!in) {
      return "error: cannot read '" + target + "'\n";
    }
    std::string source{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    bool is_viewql = target.size() > 4 && target.compare(target.size() - 4, 4, ".vql") == 0;
    jobs.push_back({target, std::move(source), is_viewql});
  }

  std::string out;
  vl::Json report = vl::Json::Array();
  size_t errors = 0;
  for (const LintJob& job : jobs) {
    analysis::LintResult result =
        job.is_viewql ? linter.LintViewQl(job.source, summary.valid ? &summary : nullptr)
                      : linter.LintViewCl(job.source);
    errors += result.diagnostics.errors();
    if (json) {
      report.Append(result.diagnostics.ToJson(job.name));
    } else {
      out += result.diagnostics.RenderText(job.source, job.name);
    }
  }
  if (json) {
    return report.Dump(2) + "\n";
  }
  return out;
}

std::string DebuggerShell::CmdVchat(const std::string& args) {
  auto [pane_text, request] = SplitFirst(args);
  int64_t pane_id = 0;
  if (!vl::ParseInt64(pane_text, &pane_id) || request.empty()) {
    return "usage: vchat <pane> <natural-language request>\n";
  }
  auto program = vchat_.Synthesize(request);
  if (!program.ok()) {
    return "error: " + program.status().ToString() + "\n";
  }
  std::string viewql = *program;
  std::string out = "synthesized ViewQL:\n" + viewql;

  // Gate the synthesized program through the linter before touching the
  // pane: a clean program applies as before; fixable mistakes are patched
  // via fix-its and re-checked once; anything still broken is refused with
  // the diagnostics as the retry hint.
  analysis::Linter linter(&dbg()->types(), &dbg()->symbols(), &dbg()->helpers(),
                          &session_->emoji());
  analysis::ProgramSummary summary =
      linter.SummarizeViewCl(panes().program_text(static_cast<int>(pane_id)));
  analysis::LintResult lint =
      linter.LintViewQl(viewql, summary.valid ? &summary : nullptr);
  if (lint.diagnostics.errors() > 0) {
    std::string patched = vl::ApplyFixIts(viewql, lint.diagnostics.diags());
    if (patched != viewql) {
      analysis::LintResult relint =
          linter.LintViewQl(patched, summary.valid ? &summary : nullptr);
      if (relint.diagnostics.errors() == 0) {
        out += "lint: applied fix-its:\n" + patched;
        viewql = std::move(patched);
        lint = std::move(relint);
      }
    }
  }
  if (lint.diagnostics.errors() > 0) {
    return out + "lint rejected the synthesized ViewQL:\n" +
           lint.diagnostics.RenderText(viewql, "vchat") +
           "hint: rephrase the request or apply a corrected program with vctrl apply\n";
  }

  vl::Status status = session_->Apply(static_cast<int>(pane_id), viewql);
  if (!status.ok()) {
    return out + "error applying: " + status.ToString() + "\n";
  }
  return out + "applied\n";
}

}  // namespace vserve
