// Shard-level refresh result cache — the dedup half of vserve.
//
// A refresh of (program + ViewQL history, kernel epoch, render backend) is
// deterministic: the virtual machine doesn't move between epochs, so two
// sessions asking for the same figure at the same epoch would charge the
// virtual clock twice for byte-identical output. The shard keeps a small LRU
// of completed ServeResults keyed by exactly that tuple; concurrent
// duplicates coalesce on it (the first requester extracts under the shard
// lock and inserts; everyone queued behind finds the entry and is charged
// nothing). Epochs are part of the key, so stale entries age out by LRU
// pressure rather than explicit invalidation.

#ifndef SRC_SERVE_RESULT_CACHE_H_
#define SRC_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/support/json.h"

namespace vserve {

// What one served refresh produced. `sequence` is the server-wide completion
// order (monotonic across all sessions); `deduped` marks results served from
// the shard result cache instead of a fresh extraction.
struct ServeResult {
  std::string render;        // pane output in the requested backend
  size_t boxes = 0;          // graph size after the refresh
  uint64_t epoch = 0;        // kernel mutation epoch observed
  uint64_t refresh_ns = 0;   // virtual ns charged to THIS session (0 if deduped)
  uint64_t sequence = 0;     // server-wide completion counter
  bool deduped = false;
  bool render_reused = false;  // render digest cache hit inside the extraction
  std::vector<std::string> violations;  // budget keys flagged by the watchdog
  // Flight-recorder identity: this refresh's request id (0 when the recorder
  // is off) and — for deduped results — the id of the extracting request
  // whose cached output was served (the dedup leader).
  uint64_t request_id = 0;
  uint64_t leader_request_id = 0;
};

// Bounded LRU of ServeResults. Not internally synchronized — the owning
// shard guards it with its cache mutex.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 256) : capacity_(capacity) {}

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  // Returns the cached result (refreshing its LRU position) or null.
  const ServeResult* Find(const std::string& key);
  // Inserts (or replaces) `key`, evicting the least recently used entry when
  // over capacity.
  void Insert(const std::string& key, ServeResult result);
  void Clear();
  // Zeroes the counters without touching cached entries (Server::ResetStats:
  // results stay servable, ratios restart).
  void ResetStats() { stats_ = Stats{}; }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  vl::Json StatsToJson() const;

 private:
  struct Entry {
    std::string key;
    ServeResult result;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  Stats stats_;
};

}  // namespace vserve

#endif  // SRC_SERVE_RESULT_CACHE_H_
