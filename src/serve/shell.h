// The v-command shell (paper §4): vplot, vctrl, and vchat as CLI-style
// commands a developer invokes at a breakpoint. This is the programmatic core
// behind the interactive example binary and the shell tests.
//
// As of the vserve redesign the shell is a thin front end over a
// vserve::Session — every plot/refresh goes through the serving layer, so
// single-user mode is literally a one-session server. Construct it on a
// Session from Server::Connect; the legacy KernelDebugger constructor remains
// as a deprecated compat shim that spins up a private inline server.

#ifndef SRC_SERVE_SHELL_H_
#define SRC_SERVE_SHELL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/serve/server.h"
#include "src/support/budget.h"
#include "src/support/timeseries.h"
#include "src/vision/panes.h"
#include "src/vision/vchat.h"

namespace vserve {

class DebuggerShell {
 public:
  // The vserve-native entry point: drive an existing session (borrowed; the
  // owning Client must outlive the shell).
  explicit DebuggerShell(Session* session);

  // DEPRECATED: pre-vserve compatibility. Wraps `debugger` in a private
  // inline single-shard Server and connects one classic session to it
  // (SessionOptions::FromCacheConfig — the debugger's cache config is
  // adopted, never reconfigured). New code should Connect to a Server and
  // use DebuggerShell(Session*).
  explicit DebuggerShell(dbg::KernelDebugger* debugger);

  // Executes one command line and returns its textual output. Commands:
  //   vplot <pane> <viewcl program...>      extract a graph into a pane
  //   vctrl split <pane> h|v                split a pane
  //   vctrl apply <pane> <viewql...>        refine a pane with ViewQL
  //   vctrl lint <file|pane> [json]         static-check ViewCL/ViewQL (vlint)
  //   vctrl check [rule|all] [incremental] [json]  vcheck invariant sweep
  //     across every shard (rule = a VC id or name; incremental re-runs only
  //     rules whose page footprint is dirty)
  //   vctrl focus addr <hex>                search all panes for an object
  //   vctrl focus <member> <value>          search by member value (e.g. pid 2)
  //   vctrl view <pane> [ascii|dot|json]    render a pane with a back-end
  //   vctrl layout                          show the pane tree
  //   vctrl save                            dump the session state as JSON
  //   vctrl stats [json]                    merged target/cache/pane cost report
  //   vctrl trace on|off|clear|dump <file>  control the deterministic tracer
  //   vctrl explain <pane> [json]           refresh + per-node cost attribution
  //   vctrl refresh <pane>                  re-extract a pane, report its cost
  //   vctrl watch on|off|clear|<pane> [json]  refresh time-series (sparklines)
  //   vctrl budget set|clear|list|report|on|off  latency budgets + violations
  //   vctrl flights [n] [json]              recent-request flight records
  //   vctrl top [json]                      fleet snapshot (queues, dedup, p99)
  //   vctrl slo set|report|clear            queue/service/total SLO ceilings
  //   vctrl export prom|folded|chrome|flights [path]  standard exporters
  //     (prom publishes serve gauges itself; chrome merges flight tracks +
  //      dedup flow arrows into the span trace)
  //   vprof <pane> <viewcl program...>      traced run + self-time breakdown
  //   vchat <pane> <natural language...>    synthesize + apply ViewQL
  //   help
  std::string Execute(const std::string& line);

  Session& session() { return *session_; }
  vision::PaneManager& panes() { return session_->panes(); }
  vision::VchatSynthesizer& vchat() { return vchat_; }
  vl::TimeSeriesRecorder& recorder() { return session_->recorder(); }
  vl::BudgetRegistry& budgets() { return session_->budgets(); }

 private:
  std::string CmdVplot(const std::string& args);
  std::string CmdVctrl(const std::string& args);
  std::string CmdLint(const std::string& args);
  std::string CmdCheck(const std::string& args);
  std::string CmdVchat(const std::string& args);
  std::string CmdVprof(const std::string& args);
  std::string CmdStats(const std::string& args);
  // The merged stats object: {"target", "cache", "panes", "tracer",
  // "metrics", "serve", "fleet", "check"} — one place for every stats shape
  // (docs/observability.md#stats-schema).
  vl::Json StatsJson() const;
  std::string CmdTrace(const std::string& args);
  std::string CmdExplain(const std::string& args);
  std::string CmdPlan(const std::string& args);
  std::string CmdRefresh(const std::string& args);
  std::string CmdWatch(const std::string& args);
  std::string CmdBudget(const std::string& args);
  std::string CmdExport(const std::string& args);
  std::string CmdFlights(const std::string& args);
  std::string CmdTop(const std::string& args);
  std::string CmdSlo(const std::string& args);

  dbg::KernelDebugger* dbg() const { return session_->debugger(); }

  // Compat-constructor plumbing (unused when attached to a caller's session).
  // Declaration order matters: the client (and its Session) must be torn
  // down before the server it is connected to.
  std::unique_ptr<Server> owned_server_;
  std::optional<Client> owned_client_;

  Session* session_;  // borrowed, or owned_client_'s session
  vision::VchatSynthesizer vchat_;
};

}  // namespace vserve

namespace vision {
// Transitional alias: DebuggerShell moved into the vserve serving layer.
// Existing vision::DebuggerShell users keep compiling; new code should name
// vserve::DebuggerShell directly.
using DebuggerShell = ::vserve::DebuggerShell;
}  // namespace vision

#endif  // SRC_SERVE_SHELL_H_
