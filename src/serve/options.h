// vserve session configuration (the serving layer's half of the API redesign).
//
// Before vserve there were three separate knobs controlling what a client's
// refreshes cost: dbg::CacheConfig (block cache), CacheConfig::Incremental()
// (dirty-log delta invalidation), and the pane layer's render digest cache.
// SessionOptions consolidates all of them into one validated struct that a
// client hands to Server::Connect. Validation is vlint-style fail-fast: every
// invalid combination gets a stable rule ID (VS001...) and a one-line
// diagnostic, and Connect refuses the session instead of silently "fixing"
// the options.

#ifndef SRC_SERVE_OPTIONS_H_
#define SRC_SERVE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/dbg/read_session.h"
#include "src/support/diag.h"

namespace vserve {

struct SessionOptions {
  // --- shared extraction cache (replaces direct dbg::CacheConfig use) ---
  // Aligned fetch granularity of the shard's ReadSession; 0 disables block
  // caching entirely (every read is a raw transport round trip).
  size_t block_bytes = 256;
  // LRU capacity in blocks.
  size_t capacity_blocks = 4096;
  // Dirty-log delta invalidation (the old CacheConfig::Incremental()): on a
  // kernel mutation epoch, evict only blocks overlapping dirty pages. This is
  // the serving default — multi-client dashboards live on incremental
  // refresh.
  bool incremental = true;
  // Above this fraction of dirty pages a full flush is cheaper than
  // block-wise eviction.
  double max_dirty_ratio = 0.5;

  // --- render ---
  // Digest-keyed render memo per pane (the old per-pane render-cache
  // behavior, now a session-level switch).
  bool render_cache = true;

  // --- extraction engines & request dedup ---
  // Per-program shard engines: ViewCL programs are loaded once per shard and
  // re-Run() on refresh, so interning/memo snapshots persist across refreshes
  // and are shared by every session plotting the same figure. false restores
  // the classic single-user semantics (a private interpreter that re-loads
  // the program on every replot) — the compat path for pre-vserve shells.
  bool shared_engines = true;
  // Coalesce identical concurrent work: refreshes of the same (figure,
  // epoch, backend) are served once and fanned out from the shard's result
  // cache. false restores classic always-re-extract semantics.
  bool coalesce = true;
  // Compile loaded ViewCL into typed extraction plans and run them as a
  // batched prefetch pass (vectored transport reads) before each
  // interpretation — docs/caching.md#extraction-plans. Serving default; only
  // engages when the shard has a block cache, and programs the linter
  // diagnoses fall back to pure interpretation automatically.
  bool compile_plans = true;

  // --- placement & admission control ---
  // Shard to attach to; "" picks one round-robin across the server's shards.
  std::string shard;
  // Latency budget for the whole session on the virtual clock; once the
  // session's charged nanoseconds reach it, further refreshes are rejected
  // with RESOURCE_EXHAUSTED (and a budget violation is recorded). 0 means
  // unlimited.
  uint64_t session_budget_ns = 0;
  // Async refresh requests a session may have queued before SubmitRefresh
  // rejects with RESOURCE_EXHAUSTED.
  size_t max_queued = 16;

  // The pre-vserve single-user defaults (classic CacheConfig, private
  // engine, no dedup) — what DebuggerShell's compat constructor uses.
  static SessionOptions Classic();
  // Adopts a live ReadSession's CacheConfig (plus classic engine/dedup
  // semantics), so attaching to an existing debugger never reconfigures it.
  static SessionOptions FromCacheConfig(const dbg::CacheConfig& config);
  // The cache fields as the dbg layer's config struct.
  dbg::CacheConfig ToCacheConfig() const;
  // True when both sets of cache fields agree — the requirement for two
  // sessions to share one shard ReadSession.
  bool CacheCompatibleWith(const SessionOptions& other) const;

  // Fail-fast diagnostics, stable rule IDs:
  //   VS001 error   incremental refresh requires a block cache (block_bytes>0)
  //   VS002 error   a block cache needs capacity_blocks > 0
  //   VS003 error   max_dirty_ratio outside [0, 1]
  //   VS004 error   max_queued must be >= 1
  //   VS005 error   shard names may not contain '|' or whitespace
  //   VS006 warning block_bytes is rounded up to a power of two
  vl::DiagnosticList Validate() const;
  // "" when there are no errors; else one rendered diagnostic per line
  // ("error[VS003]: ...").
  std::string ValidationText() const;
};

// True when the two dbg-layer configs describe the same cache behavior.
bool SameCacheConfig(const dbg::CacheConfig& a, const dbg::CacheConfig& b);

}  // namespace vserve

#endif  // SRC_SERVE_OPTIONS_H_
