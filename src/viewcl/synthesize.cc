#include "src/viewcl/synthesize.h"

#include "src/support/str.h"

namespace viewcl {

using dbg::Field;
using dbg::Type;
using dbg::TypeKind;

vl::StatusOr<std::string> SynthesizeViewCl(const dbg::TypeRegistry& types,
                                           std::string_view type_name,
                                           std::string_view root_expr,
                                           const SynthesisOptions& options) {
  const Type* type = types.FindByName(type_name);
  if (type == nullptr) {
    return vl::NotFoundError("unknown type '" + std::string(type_name) + "'");
  }
  if (!type->IsAggregate() || type->fields.empty()) {
    return vl::InvalidArgumentError("type '" + type->name + "' has no displayable fields");
  }

  std::string box_name = "Auto_" + type->name;
  std::string program = "// synthesized by vplot for '" + type->name + "'\n";
  program += "define " + box_name + " as Box<" + type->name + "> [\n";

  int emitted = 0;
  for (const Field& field : type->fields) {
    if (emitted >= options.max_fields) {
      break;
    }
    const Type* ft = field.type;
    switch (ft->kind) {
      case TypeKind::kBool:
        program += "  Text<bool> " + field.name + "\n";
        break;
      case TypeKind::kChar:
        program += "  Text<char> " + field.name + "\n";
        break;
      case TypeKind::kInt:
      case TypeKind::kEnum:
        program += "  Text " + field.name + "\n";
        break;
      case TypeKind::kArray:
        if (ft->element->kind == TypeKind::kChar) {
          program += "  Text<string> " + field.name + "\n";
        } else {
          continue;  // non-char arrays are beyond a naive skim
        }
        break;
      case TypeKind::kPointer:
        if (!options.include_pointers) {
          continue;
        }
        if (ft->pointee != nullptr && ft->pointee->kind == TypeKind::kFunc) {
          program += "  Text<fptr> " + field.name + "\n";
        } else {
          program += "  Text<raw_ptr> " + field.name + "\n";
        }
        break;
      case TypeKind::kStruct:
      case TypeKind::kUnion:
      case TypeKind::kVoid:
      case TypeKind::kFunc:
        continue;  // nested aggregates need a real (non-naive) program
    }
    ++emitted;
  }
  if (emitted == 0) {
    return vl::InvalidArgumentError("type '" + type->name +
                                    "' has no naively displayable fields");
  }
  program += "]\n";
  program += "plot " + box_name + "(${" + std::string(root_expr) + "})\n";
  return program;
}

}  // namespace viewcl
