// The ViewCL interpreter: evaluates programs against a debugger-attached
// kernel, producing a ViewGraph (paper §2.2, §4.1).
//
// Evaluation walks the live object graph purely through Target memory reads
// (never host pointers), so the latency model sees exactly the traffic a GDB
// front-end would generate. Boxes are interned by (declaration, address) so
// cyclic kernel structures terminate; container adapters implement the
// *distill* operation and anchored constructors implement container_of.

#ifndef SRC_VIEWCL_INTERP_H_
#define SRC_VIEWCL_INTERP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/ast.h"
#include "src/viewcl/decorate.h"
#include "src/viewcl/graph.h"

namespace viewcl {

struct InterpLimits {
  size_t max_boxes = 50000;
  size_t max_container_elems = 4096;
  int max_depth = 128;
  // Interning deduplicates (declaration, address) pairs; disabling it (the
  // bench_ablation experiment) makes shared/cyclic structures blow up until
  // the depth/box limits bite.
  bool intern_boxes = true;
  // Memoizes per-box extraction across Run() calls, replaying structurally
  // unchanged subtrees without re-walking them. Only engages when the
  // debugger's ReadSession runs dirty-log delta invalidation (the page
  // epochs that prove a memo is still valid come from there), so default
  // sessions keep their exact classic behavior. Requires intern_boxes.
  bool memoize_boxes = true;
};

class Interpreter {
 public:
  explicit Interpreter(dbg::KernelDebugger* debugger, InterpLimits limits = InterpLimits{});

  // Parses and accumulates a program chunk (definitions are remembered across
  // Load calls, so a prelude can be loaded before a figure program).
  // Duplicate definitions *within* one chunk and unknown decorator heads are
  // structured parse errors; redefining a box from an earlier chunk stays
  // legal so panes can replay programs through a shared interpreter.
  vl::Status Load(std::string_view source);

  // Optional fail-fast hook: when set, Load() runs the validator over each
  // successfully parsed chunk and refuses the chunk if it returns an error.
  // The static analyzer plugs in here (`vlint`'s fail-fast lint mode).
  using LoadValidator = std::function<vl::Status(const Program& program,
                                                 std::string_view source)>;
  void SetLoadValidator(LoadValidator validator) { load_validator_ = std::move(validator); }

  // Evaluates all pending top-level bindings and plot statements against the
  // current kernel state, producing a fresh graph. Can be called repeatedly;
  // each call re-runs the accumulated program on the *current* state.
  vl::StatusOr<std::unique_ptr<ViewGraph>> Run();

  // One-shot convenience.
  vl::StatusOr<std::unique_ptr<ViewGraph>> RunProgram(std::string_view source) {
    VL_RETURN_IF_ERROR(Load(source));
    return Run();
  }

  const std::vector<std::string>& warnings() const { return warnings_; }
  EmojiRegistry& emoji() { return emoji_; }
  dbg::KernelDebugger* debugger() { return debugger_; }

  // Memoization counters (how many boxes were replayed vs re-extracted
  // across this interpreter's lifetime; see docs/caching.md#incremental).
  uint64_t memo_replays() const { return memo_replays_; }
  uint64_t memo_misses() const { return memo_misses_; }

 private:
  struct VclValue;
  class Scope;
  class RunState;

  // Memoized extraction of one box subtree: a structural snapshot of the
  // boxes created while instantiating a (declaration, address) pair, plus
  // the pages its reads touched. Replayable while every touched page is
  // clean per the session's dirty log (ReadSession::RangeCleanSince).
  struct BoxMemo {
    struct BoxSnap {
      std::string decl_name;
      std::string kernel_type;
      uint64_t addr = 0;
      size_t object_size = 0;
      // Link targets / container members still carry capture-run box ids;
      // the replay remaps window-local ids by offset and external ids
      // through `externals`.
      std::vector<ViewInstance> views;
      std::map<std::string, MemberValue> members;
    };
    using InternKey = std::pair<const BoxDecl*, uint64_t>;

    uint64_t epoch = 0;  // extraction epoch (session epoch at capture)
    uint64_t base = 0;   // capture-run id of the subtree root
    std::vector<BoxSnap> boxes;  // window [base, base + boxes.size())
    // Capture-run id -> intern key of a referenced box outside the window
    // (shared structure instantiated earlier in the run).
    std::map<uint64_t, InternKey> externals;
    // Window-local id -> intern key to re-register on replay.
    std::vector<std::pair<uint64_t, InternKey>> interns;
    // Page bases (ReadSession granules) the subtree's reads touched.
    std::vector<uint64_t> pages;
  };

  dbg::KernelDebugger* debugger_;
  InterpLimits limits_;
  EmojiRegistry emoji_;

  LoadValidator load_validator_;
  std::map<std::string, const BoxDecl*> defines_;
  std::vector<std::unique_ptr<BoxDecl>> owned_decls_;
  std::vector<Binding> bindings_;
  std::vector<ExprPtr> plots_;
  std::vector<std::string> warnings_;

  // Memo store, persisted across Run() calls (cleared on Load: a new chunk
  // can redefine declarations out from under the snapshots).
  std::map<BoxMemo::InternKey, BoxMemo> memo_;
  uint64_t memo_replays_ = 0;
  uint64_t memo_misses_ = 0;
};

}  // namespace viewcl

#endif  // SRC_VIEWCL_INTERP_H_
