// The ViewCL interpreter: evaluates programs against a debugger-attached
// kernel, producing a ViewGraph (paper §2.2, §4.1).
//
// Evaluation walks the live object graph purely through Target memory reads
// (never host pointers), so the latency model sees exactly the traffic a GDB
// front-end would generate. Boxes are interned by (declaration, address) so
// cyclic kernel structures terminate; container adapters implement the
// *distill* operation and anchored constructors implement container_of.

#ifndef SRC_VIEWCL_INTERP_H_
#define SRC_VIEWCL_INTERP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/ast.h"
#include "src/viewcl/decorate.h"
#include "src/viewcl/graph.h"

namespace viewcl {

struct InterpLimits {
  size_t max_boxes = 50000;
  size_t max_container_elems = 4096;
  int max_depth = 128;
  // Interning deduplicates (declaration, address) pairs; disabling it (the
  // bench_ablation experiment) makes shared/cyclic structures blow up until
  // the depth/box limits bite.
  bool intern_boxes = true;
};

class Interpreter {
 public:
  explicit Interpreter(dbg::KernelDebugger* debugger, InterpLimits limits = InterpLimits{});

  // Parses and accumulates a program chunk (definitions are remembered across
  // Load calls, so a prelude can be loaded before a figure program).
  // Duplicate definitions *within* one chunk and unknown decorator heads are
  // structured parse errors; redefining a box from an earlier chunk stays
  // legal so panes can replay programs through a shared interpreter.
  vl::Status Load(std::string_view source);

  // Optional fail-fast hook: when set, Load() runs the validator over each
  // successfully parsed chunk and refuses the chunk if it returns an error.
  // The static analyzer plugs in here (`vlint`'s fail-fast lint mode).
  using LoadValidator = std::function<vl::Status(const Program& program,
                                                 std::string_view source)>;
  void SetLoadValidator(LoadValidator validator) { load_validator_ = std::move(validator); }

  // Evaluates all pending top-level bindings and plot statements against the
  // current kernel state, producing a fresh graph. Can be called repeatedly;
  // each call re-runs the accumulated program on the *current* state.
  vl::StatusOr<std::unique_ptr<ViewGraph>> Run();

  // One-shot convenience.
  vl::StatusOr<std::unique_ptr<ViewGraph>> RunProgram(std::string_view source) {
    VL_RETURN_IF_ERROR(Load(source));
    return Run();
  }

  const std::vector<std::string>& warnings() const { return warnings_; }
  EmojiRegistry& emoji() { return emoji_; }
  dbg::KernelDebugger* debugger() { return debugger_; }

 private:
  struct VclValue;
  class Scope;
  class RunState;

  dbg::KernelDebugger* debugger_;
  InterpLimits limits_;
  EmojiRegistry emoji_;

  LoadValidator load_validator_;
  std::map<std::string, const BoxDecl*> defines_;
  std::vector<std::unique_ptr<BoxDecl>> owned_decls_;
  std::vector<Binding> bindings_;
  std::vector<ExprPtr> plots_;
  std::vector<std::string> warnings_;
};

}  // namespace viewcl

#endif  // SRC_VIEWCL_INTERP_H_
