// The ViewCL interpreter: evaluates programs against a debugger-attached
// kernel, producing a ViewGraph (paper §2.2, §4.1).
//
// Evaluation walks the live object graph purely through Target memory reads
// (never host pointers), so the latency model sees exactly the traffic a GDB
// front-end would generate. Boxes are interned by (declaration, address) so
// cyclic kernel structures terminate; container adapters implement the
// *distill* operation and anchored constructors implement container_of.

#ifndef SRC_VIEWCL_INTERP_H_
#define SRC_VIEWCL_INTERP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/support/json.h"
#include "src/viewcl/ast.h"
#include "src/viewcl/decorate.h"
#include "src/viewcl/graph.h"

namespace viewcl {

struct InterpLimits {
  size_t max_boxes = 50000;
  size_t max_container_elems = 4096;
  int max_depth = 128;
  // Interning deduplicates (declaration, address) pairs; disabling it (the
  // bench_ablation experiment) makes shared/cyclic structures blow up until
  // the depth/box limits bite.
  bool intern_boxes = true;
  // Memoizes per-box extraction across Run() calls, replaying structurally
  // unchanged subtrees without re-walking them. Only engages when the
  // debugger's ReadSession runs dirty-log delta invalidation (the page
  // epochs that prove a memo is still valid come from there), so default
  // sessions keep their exact classic behavior. Requires intern_boxes.
  bool memoize_boxes = true;
  // Compiles the loaded program into an extraction plan and executes it as a
  // batched prefetch pass before each interpretation (docs/caching.md
  // #extraction-plans). Off by default at this layer so embedders with exact
  // read-count expectations opt in; the serving layer defaults it on
  // (SessionOptions::compile_plans). Only engages when the session's block
  // cache is enabled — without a cache the prefetch would double-charge.
  bool compile_plans = false;
  // Wavefront decode parallelism for the plan executor (see PlanExecOptions).
  int plan_workers = 4;
  size_t plan_parallel_min = 64;
};

class ExtractionPlan;

class Interpreter {
 public:
  explicit Interpreter(dbg::KernelDebugger* debugger, InterpLimits limits = InterpLimits{});
  ~Interpreter();  // out of line: ExtractionPlan is forward-declared

  // Parses and accumulates a program chunk (definitions are remembered across
  // Load calls, so a prelude can be loaded before a figure program).
  // Duplicate definitions *within* one chunk and unknown decorator heads are
  // structured parse errors; redefining a box from an earlier chunk stays
  // legal so panes can replay programs through a shared interpreter.
  vl::Status Load(std::string_view source);

  // Optional fail-fast hook: when set, Load() runs the validator over each
  // successfully parsed chunk and refuses the chunk if it returns an error.
  // The static analyzer plugs in here (`vlint`'s fail-fast lint mode).
  using LoadValidator = std::function<vl::Status(const Program& program,
                                                 std::string_view source)>;
  void SetLoadValidator(LoadValidator validator) { load_validator_ = std::move(validator); }

  // Plan gate: consulted per Load chunk when compile_plans is on. Returning
  // false marks the program plan-blocked — every subsequent Run() skips plan
  // execution and uses pure interpretation. The serving layer installs a
  // linter-backed gate here so statically diagnosed programs never reach the
  // speculative executor (they fall back to the classic path instead).
  using PlanGate = std::function<bool(const Program& program, std::string_view source)>;
  void SetPlanGate(PlanGate gate) { plan_gate_ = std::move(gate); }

  // Evaluates all pending top-level bindings and plot statements against the
  // current kernel state, producing a fresh graph. Can be called repeatedly;
  // each call re-runs the accumulated program on the *current* state.
  vl::StatusOr<std::unique_ptr<ViewGraph>> Run();

  // One-shot convenience.
  vl::StatusOr<std::unique_ptr<ViewGraph>> RunProgram(std::string_view source) {
    VL_RETURN_IF_ERROR(Load(source));
    return Run();
  }

  const std::vector<std::string>& warnings() const { return warnings_; }
  EmojiRegistry& emoji() { return emoji_; }
  dbg::KernelDebugger* debugger() { return debugger_; }

  // Memoization counters (how many boxes were replayed vs re-extracted
  // across this interpreter's lifetime; see docs/caching.md#incremental).
  uint64_t memo_replays() const { return memo_replays_; }
  uint64_t memo_misses() const { return memo_misses_; }

  // The compiled extraction plan for the current program, or null when plans
  // are disabled/blocked or no Run() has happened since the last Load.
  const ExtractionPlan* plan() const { return plan_.get(); }
  // Plan DAG + last batch stats as JSON (`vctrl plan`). Null JSON when no
  // plan is live; includes a "blocked" marker when the gate refused one.
  vl::Json PlanToJson() const;

 private:
  struct VclValue;
  class Scope;
  class RunState;

  // Memoized extraction of one box subtree: a structural snapshot of the
  // boxes created while instantiating a (declaration, address) pair, plus
  // the pages its reads touched. Replayable while every touched page is
  // clean per the session's dirty log (ReadSession::RangeCleanSince).
  struct BoxMemo {
    struct BoxSnap {
      std::string decl_name;
      std::string kernel_type;
      uint64_t addr = 0;
      size_t object_size = 0;
      // Link targets / container members still carry capture-run box ids;
      // the replay remaps window-local ids by offset and external ids
      // through `externals`.
      std::vector<ViewInstance> views;
      std::map<std::string, MemberValue> members;
    };
    using InternKey = std::pair<const BoxDecl*, uint64_t>;

    uint64_t epoch = 0;  // extraction epoch (session epoch at capture)
    uint64_t base = 0;   // capture-run id of the subtree root
    std::vector<BoxSnap> boxes;  // window [base, base + boxes.size())
    // Capture-run id -> intern key of a referenced box outside the window
    // (shared structure instantiated earlier in the run).
    std::map<uint64_t, InternKey> externals;
    // Window-local id -> intern key to re-register on replay.
    std::vector<std::pair<uint64_t, InternKey>> interns;
    // Page bases (ReadSession granules) the subtree's reads touched.
    std::vector<uint64_t> pages;
  };

  dbg::KernelDebugger* debugger_;
  InterpLimits limits_;
  EmojiRegistry emoji_;

  LoadValidator load_validator_;
  std::map<std::string, const BoxDecl*> defines_;
  std::vector<std::unique_ptr<BoxDecl>> owned_decls_;
  std::vector<Binding> bindings_;
  std::vector<ExprPtr> plots_;
  std::vector<std::string> warnings_;

  // Memo store, persisted across Run() calls (cleared on Load: a new chunk
  // can redefine declarations out from under the snapshots).
  std::map<BoxMemo::InternKey, BoxMemo> memo_;
  uint64_t memo_replays_ = 0;
  uint64_t memo_misses_ = 0;

  // Extraction-plan state. The program version bumps on every Load; Run()
  // recompiles the plan lazily when the versions diverge (plan.compiles vs
  // plan.cache_hits counters).
  void MaybeRunPlan();
  PlanGate plan_gate_;
  bool plan_blocked_ = false;
  uint64_t program_version_ = 0;
  uint64_t plan_version_ = 0;
  std::unique_ptr<ExtractionPlan> plan_;
};

}  // namespace viewcl

#endif  // SRC_VIEWCL_INTERP_H_
