#include "src/viewcl/interp.h"

#include <cassert>
#include <optional>

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"
#include "src/viewcl/parser.h"
#include "src/viewcl/plan.h"

namespace viewcl {

using dbg::Type;
using dbg::TypeKind;
using dbg::Value;

// ---------------------------------------------------------------------------
// Values and scopes
// ---------------------------------------------------------------------------

struct Interpreter::VclValue {
  enum class Kind { kNull, kDbg, kBox, kBoxSet, kRawSet };
  Kind kind = Kind::kNull;
  Value dbg;                        // kDbg
  uint64_t box = kNoBox;            // kBox
  std::vector<uint64_t> box_set;    // kBoxSet
  std::vector<Value> raw_set;       // kRawSet
  std::string set_kind;             // container kind ("List", "RBTree", ...)

  static VclValue Null() { return VclValue{}; }
  static VclValue Dbg(Value v) {
    VclValue out;
    out.kind = Kind::kDbg;
    out.dbg = v;
    return out;
  }
  static VclValue Box(uint64_t id) {
    VclValue out;
    out.kind = Kind::kBox;
    out.box = id;
    return out;
  }
  static VclValue BoxSet(std::vector<uint64_t> ids) {
    VclValue out;
    out.kind = Kind::kBoxSet;
    out.box_set = std::move(ids);
    return out;
  }
  static VclValue RawSet(std::vector<Value> values) {
    VclValue out;
    out.kind = Kind::kRawSet;
    out.raw_set = std::move(values);
    return out;
  }
};

class Interpreter::Scope {
 public:
  explicit Scope(const Scope* parent = nullptr) : parent_(parent) {}

  const VclValue* Find(const std::string& name) const {
    auto it = vars_.find(name);
    if (it != vars_.end()) {
      return &it->second;
    }
    return parent_ != nullptr ? parent_->Find(name) : nullptr;
  }

  void Set(const std::string& name, VclValue value) { vars_[name] = std::move(value); }

  const Scope* parent() const { return parent_; }
  const std::map<std::string, VclValue>& vars() const { return vars_; }

 private:
  const Scope* parent_;
  std::map<std::string, VclValue> vars_;
};

// ---------------------------------------------------------------------------
// RunState: one evaluation of the accumulated program
// ---------------------------------------------------------------------------

class Interpreter::RunState {
 public:
  RunState(Interpreter* interp)
      : in_(interp),
        dbg_(interp->debugger_),
        ctx_(&interp->debugger_->context()),
        graph_(std::make_unique<ViewGraph>()) {
    ResolveWellKnownOffsets();
  }

  vl::StatusOr<std::unique_ptr<ViewGraph>> Run() {
    vl::ScopedSpan span("viewcl.eval");
    Scope global;
    for (const Binding& binding : in_->bindings_) {
      auto value = EvalExpr(binding.value.get(), &global, 0);
      if (!value.ok()) {
        Warn("binding '" + binding.name + "': " + value.status().ToString());
        global.Set(binding.name, VclValue::Null());
      } else {
        global.Set(binding.name, std::move(value).value());
      }
    }
    for (const ExprPtr& plot : in_->plots_) {
      auto value = EvalExpr(plot.get(), &global, 0);
      if (!value.ok()) {
        Warn("plot: " + value.status().ToString());
        continue;
      }
      switch (value->kind) {
        case VclValue::Kind::kBox:
          graph_->roots().push_back(value->box);
          break;
        case VclValue::Kind::kBoxSet: {
          uint64_t id = MakeContainerBox("plot", value->box_set, value->set_kind);
          graph_->roots().push_back(id);
          break;
        }
        case VclValue::Kind::kRawSet: {
          uint64_t id =
              MakeContainerBox("plot", MakeRawBoxes("item", value->raw_set), value->set_kind);
          graph_->roots().push_back(id);
          break;
        }
        default:
          Warn("plot produced no boxes");
      }
    }
    if (vl::Tracer::Instance().enabled()) {
      vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
      metrics.GetCounter("graph.nodes")->Add(graph_->size());
      metrics.GetCounter("graph.bytes")->Add(graph_->TotalObjectBytes());
    }
    return std::move(graph_);
  }

 private:
  void Warn(std::string message) { in_->warnings_.push_back(std::move(message)); }

  vl::Status LimitError() { return vl::FailedPreconditionError("box limit exceeded"); }

  void ResolveWellKnownOffsets() {
    dbg::TypeRegistry& reg = dbg_->types();
    auto off = [&reg](const char* type_name, const char* field) -> size_t {
      const Type* t = reg.FindByName(type_name);
      assert(t != nullptr);
      const dbg::Field* f = t->FindField(field);
      assert(f != nullptr);
      return f->offset;
    };
    off_list_next_ = off("list_head", "next");
    off_hlist_first_ = off("hlist_head", "first");
    off_hnode_next_ = off("hlist_node", "next");
    off_rbroot_node_ = off("rb_root", "rb_node");
    off_rbcached_root_ = off("rb_root_cached", "rb_root");
    off_rb_left_ = off("rb_node", "rb_left");
    off_rb_right_ = off("rb_node", "rb_right");
    off_radix_rnode_ = off("radix_tree_root", "rnode");
    off_radix_shift_ = off("radix_tree_node", "shift");
    off_radix_slots_ = off("radix_tree_node", "slots");
    off_mt_root_ = off("maple_tree", "ma_root");
    off_mr64_pivot_ = off("maple_range_64", "pivot");
    off_mr64_slot_ = off("maple_range_64", "slot");
    off_ma64_pivot_ = off("maple_arange_64", "pivot");
    off_ma64_slot_ = off("maple_arange_64", "slot");
  }

  // --- scalar plumbing ---

  vl::StatusOr<uint64_t> ObjectAddr(const Value& v) {
    if (v.is_lvalue()) {
      if (v.type() != nullptr && v.type()->kind == TypeKind::kPointer) {
        VL_ASSIGN_OR_RETURN(Value loaded, v.Load(&dbg_->session()));
        return loaded.bits();
      }
      return v.addr();
    }
    return v.bits();
  }

  vl::StatusOr<uint64_t> ScalarBits(const Value& v) {
    VL_ASSIGN_OR_RETURN(Value loaded, v.Load(&dbg_->session()));
    if (loaded.is_lvalue()) {
      return loaded.addr();  // aggregates decay to their address
    }
    return loaded.bits();
  }

  vl::StatusOr<uint64_t> ReadPtr(uint64_t addr) { return dbg_->session().ReadUnsigned(addr, 8); }

  // Builds the C-expression environment from the lexical scope chain.
  dbg::Environment BuildEnv(const Scope* scope) {
    dbg::Environment env;
    for (const Scope* s = scope; s != nullptr; s = s->parent()) {
      for (const auto& [name, value] : s->vars()) {
        if (env.count(name) != 0) {
          continue;  // inner scope wins
        }
        if (value.kind == VclValue::Kind::kDbg) {
          env.emplace(name, value.dbg);
        } else if (value.kind == VclValue::Kind::kBox) {
          const VBox* box = graph_->box(value.box);
          if (box != nullptr && !box->is_virtual()) {
            const Type* t = dbg_->types().FindByName(box->kernel_type());
            if (t != nullptr) {
              env.emplace(name, Value::MakePointer(dbg_->types().PointerTo(t), box->addr()));
            }
          }
        }
      }
    }
    return env;
  }

  vl::StatusOr<Value> EvalC(const std::string& text, const Scope* scope) {
    dbg::Environment env = BuildEnv(scope);
    return dbg::EvalCExpression(ctx_, text, &env);
  }

  // --- expression evaluation ---

  vl::StatusOr<VclValue> EvalExpr(const Expr* expr, Scope* scope, int depth) {
    if (depth > in_->limits_.max_depth) {
      return vl::FailedPreconditionError("evaluation depth limit exceeded");
    }
    switch (expr->kind) {
      case Expr::Kind::kCExpr: {
        VL_ASSIGN_OR_RETURN(Value v, EvalC(expr->text, scope));
        return VclValue::Dbg(v);
      }
      case Expr::Kind::kAtRef: {
        const VclValue* found = scope->Find(expr->text);
        if (found == nullptr) {
          return vl::EvalError("unbound @" + expr->text);
        }
        return *found;
      }
      case Expr::Kind::kInt:
        return VclValue::Dbg(Value::MakeInt(dbg_->types().u64(), expr->ival));
      case Expr::Kind::kNull:
        return VclValue::Null();
      case Expr::Kind::kFieldPath: {
        const VclValue* self = scope->Find("this");
        if (self == nullptr || self->kind != VclValue::Kind::kDbg) {
          return vl::EvalError("field path '" + vl::StrJoin(expr->path, ".") +
                               "' outside a box context");
        }
        Value v = self->dbg;
        for (const std::string& field : expr->path) {
          VL_ASSIGN_OR_RETURN(v, v.Member(&dbg_->session(), &dbg_->types(), field));
        }
        return VclValue::Dbg(v);
      }
      case Expr::Kind::kSwitch:
        return EvalSwitch(expr, scope, depth);
      case Expr::Kind::kBoxCtor:
        return EvalBoxCtor(expr, scope, depth);
      case Expr::Kind::kContainerCtor:
        return EvalContainerCtor(expr, scope, depth);
      case Expr::Kind::kSelectFrom:
        return EvalSelectFrom(expr, scope, depth);
      case Expr::Kind::kInlineBox:
        return InstantiateBox(expr->inline_box.get(), Value(), scope, depth + 1);
    }
    return vl::InternalError("unhandled ViewCL expression");
  }

  vl::StatusOr<VclValue> EvalSwitch(const Expr* expr, Scope* scope, int depth) {
    VL_ASSIGN_OR_RETURN(VclValue scrutinee, EvalExpr(expr->kids[0].get(), scope, depth + 1));
    uint64_t bits = 0;
    if (scrutinee.kind == VclValue::Kind::kDbg) {
      VL_ASSIGN_OR_RETURN(bits, ScalarBits(scrutinee.dbg));
    } else if (scrutinee.kind == VclValue::Kind::kNull) {
      bits = 0;
    } else {
      return vl::EvalError("switch scrutinee must be a scalar");
    }
    for (const SwitchCase& sc : expr->cases) {
      for (const ExprPtr& label : sc.labels) {
        VL_ASSIGN_OR_RETURN(VclValue lv, EvalExpr(label.get(), scope, depth + 1));
        uint64_t label_bits = 0;
        if (lv.kind == VclValue::Kind::kDbg) {
          VL_ASSIGN_OR_RETURN(label_bits, ScalarBits(lv.dbg));
        }
        if (label_bits == bits) {
          return EvalExpr(sc.body.get(), scope, depth + 1);
        }
      }
    }
    if (expr->otherwise != nullptr) {
      return EvalExpr(expr->otherwise.get(), scope, depth + 1);
    }
    return VclValue::Null();
  }

  vl::StatusOr<VclValue> EvalBoxCtor(const Expr* expr, Scope* scope, int depth) {
    auto it = in_->defines_.find(expr->text);
    if (it == in_->defines_.end()) {
      return vl::EvalError("unknown Box '" + expr->text + "'");
    }
    const BoxDecl* decl = it->second;
    VL_ASSIGN_OR_RETURN(VclValue arg, EvalExpr(expr->kids[0].get(), scope, depth + 1));
    uint64_t addr = 0;
    if (arg.kind == VclValue::Kind::kDbg) {
      VL_ASSIGN_OR_RETURN(addr, ObjectAddr(arg.dbg));
    } else if (arg.kind == VclValue::Kind::kBox) {
      const VBox* box = graph_->box(arg.box);
      addr = box != nullptr ? box->addr() : 0;
    } else if (arg.kind == VclValue::Kind::kNull) {
      return VclValue::Null();
    }
    if (addr == 0) {
      return VclValue::Null();
    }
    // Anchored constructor: container_of the argument.
    if (!expr->path.empty()) {
      VL_ASSIGN_OR_RETURN(size_t anchor_off, AnchorOffset(expr->path));
      addr -= anchor_off;
    }
    const Type* t = dbg_->types().FindByName(decl->kernel_type);
    Value object = Value::MakeLValue(t != nullptr ? t : dbg_->types().void_type(), addr);
    return InstantiateBox(decl, object, nullptr, depth + 1);
  }

  vl::StatusOr<size_t> AnchorOffset(const std::vector<std::string>& path) {
    const Type* t = dbg_->types().FindByName(path[0]);
    if (t == nullptr) {
      return vl::EvalError("unknown anchor type '" + path[0] + "'");
    }
    size_t total = 0;
    for (size_t i = 1; i < path.size(); ++i) {
      if (t->kind == TypeKind::kArray) {
        t = t->element;  // anchors through array fields address element 0
      }
      const dbg::Field* f = t->FindField(path[i]);
      if (f == nullptr) {
        return vl::EvalError("anchor: '" + t->name + "' has no member '" + path[i] + "'");
      }
      total += f->offset;
      t = f->type;
    }
    return total;
  }

  // --- container adapters (the distill/flatten machinery) ---

  vl::StatusOr<VclValue> EvalContainerCtor(const Expr* expr, Scope* scope, int depth) {
    std::vector<VclValue> args;
    for (const ExprPtr& kid : expr->kids) {
      VL_ASSIGN_OR_RETURN(VclValue v, EvalExpr(kid.get(), scope, depth + 1));
      args.push_back(std::move(v));
    }
    std::vector<Value> elements;
    const std::string& kind = expr->text;
    if (kind == "List") {
      VL_ASSIGN_OR_RETURN(elements, WalkList(args));
    } else if (kind == "HList") {
      VL_ASSIGN_OR_RETURN(elements, WalkHList(args));
    } else if (kind == "RBTree") {
      VL_ASSIGN_OR_RETURN(elements, WalkRbTree(args));
    } else if (kind == "Array") {
      VL_ASSIGN_OR_RETURN(elements, WalkArray(args));
    } else if (kind == "XArray" || kind == "RadixTree") {
      VL_ASSIGN_OR_RETURN(elements, WalkRadix(args));
    } else if (kind == "MapleTree") {
      VL_ASSIGN_OR_RETURN(elements, WalkMaple(args));
    } else {
      return vl::EvalError("unknown container '" + kind + "'");
    }

    if (expr->for_each == nullptr) {
      VclValue raw = VclValue::RawSet(std::move(elements));
      raw.set_kind = kind;
      return raw;
    }
    const ForEachClause* fe = expr->for_each.get();
    std::vector<uint64_t> boxes;
    for (const Value& element : elements) {
      Scope iter(scope);
      iter.Set(fe->var, VclValue::Dbg(element));
      bool failed = false;
      for (const Binding& binding : fe->bindings) {
        auto v = EvalExpr(binding.value.get(), &iter, depth + 1);
        if (!v.ok()) {
          Warn("forEach binding '" + binding.name + "': " + v.status().ToString());
          iter.Set(binding.name, VclValue::Null());
          failed = true;
        } else {
          iter.Set(binding.name, std::move(v).value());
        }
      }
      (void)failed;
      auto yielded = EvalExpr(fe->yield.get(), &iter, depth + 1);
      if (!yielded.ok()) {
        Warn("forEach yield: " + yielded.status().ToString());
        continue;
      }
      if (yielded->kind == VclValue::Kind::kBox) {
        boxes.push_back(yielded->box);
      } else if (yielded->kind == VclValue::Kind::kBoxSet) {
        boxes.insert(boxes.end(), yielded->box_set.begin(), yielded->box_set.end());
      }
      // kNull yields are skipped (e.g. empty maple slots).
    }
    VclValue result = VclValue::BoxSet(std::move(boxes));
    result.set_kind = kind;
    return result;
  }

  vl::StatusOr<uint64_t> ArgAddr(const std::vector<VclValue>& args, const char* what) {
    if (args.empty() || args[0].kind != VclValue::Kind::kDbg) {
      return vl::EvalError(std::string(what) + ": expected an object argument");
    }
    return ObjectAddr(args[0].dbg);
  }

  vl::StatusOr<std::vector<Value>> WalkList(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.list");
    VL_ASSIGN_OR_RETURN(uint64_t head, ArgAddr(args, "List"));
    std::vector<Value> out;
    const Type* node_type = dbg_->types().FindByName("list_head");
    VL_ASSIGN_OR_RETURN(uint64_t node, ReadPtr(head + off_list_next_));
    while (node != 0 && node != head && out.size() < in_->limits_.max_container_elems) {
      out.push_back(Value::MakeLValue(node_type, node));
      VL_ASSIGN_OR_RETURN(node, ReadPtr(node + off_list_next_));
    }
    return out;
  }

  vl::StatusOr<std::vector<Value>> WalkHList(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.hlist");
    VL_ASSIGN_OR_RETURN(uint64_t head, ArgAddr(args, "HList"));
    std::vector<Value> out;
    const Type* node_type = dbg_->types().FindByName("hlist_node");
    VL_ASSIGN_OR_RETURN(uint64_t node, ReadPtr(head + off_hlist_first_));
    while (node != 0 && out.size() < in_->limits_.max_container_elems) {
      out.push_back(Value::MakeLValue(node_type, node));
      VL_ASSIGN_OR_RETURN(node, ReadPtr(node + off_hnode_next_));
    }
    return out;
  }

  vl::StatusOr<std::vector<Value>> WalkRbTree(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.rbtree");
    if (args.empty() || args[0].kind != VclValue::Kind::kDbg) {
      return vl::EvalError("RBTree: expected a root argument");
    }
    Value root = args[0].dbg;
    uint64_t root_addr = 0;
    // Accept rb_root, rb_root_cached, or a pointer to either.
    Value cursor = root;
    if (cursor.type() != nullptr && cursor.type()->kind == TypeKind::kPointer) {
      VL_ASSIGN_OR_RETURN(cursor, cursor.Deref(&dbg_->session(), &dbg_->types()));
    }
    if (cursor.type() != nullptr && cursor.type()->name == "rb_root_cached") {
      root_addr = cursor.addr() + off_rbcached_root_;
    } else {
      root_addr = cursor.is_lvalue() ? cursor.addr() : cursor.bits();
    }
    VL_ASSIGN_OR_RETURN(uint64_t node, ReadPtr(root_addr + off_rbroot_node_));
    // Iterative in-order traversal with an explicit stack of node addresses.
    std::vector<Value> out;
    const Type* node_type = dbg_->types().FindByName("rb_node");
    std::vector<uint64_t> stack;
    while ((node != 0 || !stack.empty()) &&
           out.size() < in_->limits_.max_container_elems) {
      while (node != 0) {
        stack.push_back(node);
        VL_ASSIGN_OR_RETURN(node, ReadPtr(node + off_rb_left_));
        if (stack.size() > 4096) {
          return vl::EvalError("RBTree: runaway traversal");
        }
      }
      if (stack.empty()) {
        break;
      }
      uint64_t current = stack.back();
      stack.pop_back();
      out.push_back(Value::MakeLValue(node_type, current));
      VL_ASSIGN_OR_RETURN(node, ReadPtr(current + off_rb_right_));
    }
    return out;
  }

  vl::StatusOr<std::vector<Value>> WalkArray(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.array");
    if (args.empty() || args[0].kind != VclValue::Kind::kDbg) {
      return vl::EvalError("Array: expected an array argument");
    }
    Value arr = args[0].dbg;
    std::vector<Value> out;
    if (arr.is_lvalue() && arr.type() != nullptr && arr.type()->kind == TypeKind::kArray) {
      const Type* elem = arr.type()->element;
      size_t n = arr.type()->array_len;
      if (args.size() > 1 && args[1].kind == VclValue::Kind::kDbg) {
        VL_ASSIGN_OR_RETURN(uint64_t limit, ScalarBits(args[1].dbg));
        n = std::min<size_t>(n, limit);
      }
      n = std::min(n, in_->limits_.max_container_elems);
      for (size_t i = 0; i < n; ++i) {
        out.push_back(Value::MakeLValue(elem, arr.addr() + i * elem->size));
      }
      return out;
    }
    // Pointer base + explicit count.
    if (arr.type() != nullptr && arr.type()->kind == TypeKind::kPointer) {
      if (args.size() < 2 || args[1].kind != VclValue::Kind::kDbg) {
        return vl::EvalError("Array(pointer) requires an element count");
      }
      VL_ASSIGN_OR_RETURN(Value base, arr.Load(&dbg_->session()));
      VL_ASSIGN_OR_RETURN(uint64_t n, ScalarBits(args[1].dbg));
      n = std::min<uint64_t>(n, in_->limits_.max_container_elems);
      const Type* elem = base.type()->pointee;
      if (elem->size == 0) {
        return vl::EvalError("Array of void: unknown element size");
      }
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(Value::MakeLValue(elem, base.bits() + i * elem->size));
      }
      return out;
    }
    return vl::EvalError("Array: argument is not an array or pointer");
  }

  vl::Status WalkRadixNode(uint64_t node, std::vector<Value>* out) {
    VL_ASSIGN_OR_RETURN(uint64_t shift, dbg_->session().ReadUnsigned(node + off_radix_shift_, 1));
    for (int i = 0; i < vkern::kRadixTreeMapSize; ++i) {
      if (out->size() >= in_->limits_.max_container_elems) {
        return vl::Status::Ok();
      }
      VL_ASSIGN_OR_RETURN(uint64_t slot,
                          ReadPtr(node + off_radix_slots_ + static_cast<uint64_t>(i) * 8));
      if (slot == 0) {
        continue;
      }
      if (shift == 0) {
        out->push_back(
            Value::MakePointer(dbg_->types().PointerTo(dbg_->types().void_type()), slot));
      } else {
        VL_RETURN_IF_ERROR(WalkRadixNode(slot, out));
      }
    }
    return vl::Status::Ok();
  }

  vl::StatusOr<std::vector<Value>> WalkRadix(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.xarray");
    VL_ASSIGN_OR_RETURN(uint64_t root, ArgAddr(args, "XArray"));
    std::vector<Value> out;
    VL_ASSIGN_OR_RETURN(uint64_t rnode, ReadPtr(root + off_radix_rnode_));
    if (rnode != 0) {
      VL_RETURN_IF_ERROR(WalkRadixNode(rnode, &out));
    }
    return out;
  }

  vl::Status WalkMapleNode(uint64_t enode, uint64_t max, std::vector<Value>* out) {
    uint64_t node = enode & ~uint64_t{0xff};
    uint32_t type = (enode >> 3) & 0xf;
    bool leaf = type < vkern::maple_range_64;
    bool arange = type == vkern::maple_arange_64;
    uint64_t pivot_off = arange ? off_ma64_pivot_ : off_mr64_pivot_;
    uint64_t slot_off = arange ? off_ma64_slot_ : off_mr64_slot_;
    uint32_t pivots = arange ? vkern::kMapleArange64Slots - 1 : vkern::kMapleRange64Slots - 1;
    uint64_t prev_pivot = 0;
    for (uint32_t i = 0; i <= pivots; ++i) {
      if (out->size() >= in_->limits_.max_container_elems) {
        return vl::Status::Ok();
      }
      uint64_t slot_max = max;
      if (i < pivots) {
        VL_ASSIGN_OR_RETURN(slot_max,
                            dbg_->session().ReadUnsigned(node + pivot_off + i * 8ull, 8));
        if (slot_max == 0 || slot_max >= max) {
          slot_max = max;  // terminator: this is the last slot
        }
      }
      VL_ASSIGN_OR_RETURN(uint64_t entry, ReadPtr(node + slot_off + i * 8ull));
      if (entry != 0) {
        if (leaf) {
          out->push_back(
              Value::MakePointer(dbg_->types().PointerTo(dbg_->types().void_type()), entry));
        } else {
          VL_RETURN_IF_ERROR(WalkMapleNode(entry, slot_max, out));
        }
      }
      if (slot_max == max) {
        break;
      }
      prev_pivot = slot_max;
      (void)prev_pivot;
    }
    return vl::Status::Ok();
  }

  vl::StatusOr<std::vector<Value>> WalkMaple(const std::vector<VclValue>& args) {
    vl::ScopedSpan span("viewcl.adapter.mapletree");
    VL_ASSIGN_OR_RETURN(uint64_t tree, ArgAddr(args, "MapleTree"));
    std::vector<Value> out;
    VL_ASSIGN_OR_RETURN(uint64_t root, ReadPtr(tree + off_mt_root_));
    if (root == 0) {
      return out;
    }
    if ((root & 2) == 0) {
      // Direct entry at the root.
      out.push_back(Value::MakePointer(dbg_->types().PointerTo(dbg_->types().void_type()), root));
      return out;
    }
    VL_RETURN_IF_ERROR(WalkMapleNode(root, ~0ull, &out));
    return out;
  }

  vl::StatusOr<VclValue> EvalSelectFrom(const Expr* expr, Scope* scope, int depth) {
    VL_ASSIGN_OR_RETURN(VclValue source, EvalExpr(expr->kids[0].get(), scope, depth + 1));
    // Resolve the underlying object (box or value) and its kernel type.
    uint64_t addr = 0;
    std::string type_name;
    if (source.kind == VclValue::Kind::kBox) {
      const VBox* box = graph_->box(source.box);
      if (box == nullptr) {
        return vl::EvalError("selectFrom: dangling box");
      }
      addr = box->addr();
      type_name = box->kernel_type();
    } else if (source.kind == VclValue::Kind::kDbg) {
      Value v = source.dbg;
      if (v.type() != nullptr && v.type()->kind == TypeKind::kPointer) {
        VL_ASSIGN_OR_RETURN(v, v.Deref(&dbg_->session(), &dbg_->types()));
      }
      addr = v.addr();
      type_name = v.type() != nullptr ? v.type()->name : "";
    } else {
      return vl::EvalError("selectFrom: unsupported source");
    }

    std::vector<Value> entries;
    std::vector<VclValue> args;
    args.push_back(VclValue::Dbg(
        Value::MakeLValue(dbg_->types().FindByName(type_name), addr)));
    if (type_name == "maple_tree") {
      VL_ASSIGN_OR_RETURN(entries, WalkMaple(args));
    } else if (type_name == "radix_tree_root" || type_name == "address_space") {
      if (type_name == "address_space") {
        const Type* as = dbg_->types().FindByName("address_space");
        const dbg::Field* f = as->FindField("i_pages");
        args[0] = VclValue::Dbg(Value::MakeLValue(
            dbg_->types().FindByName("radix_tree_root"), addr + f->offset));
      }
      VL_ASSIGN_OR_RETURN(entries, WalkRadix(args));
    } else {
      return vl::EvalError("selectFrom: cannot distill a '" + type_name + "'");
    }

    auto it = in_->defines_.find(expr->text);
    if (it == in_->defines_.end()) {
      return vl::EvalError("selectFrom: unknown Box '" + expr->text + "'");
    }
    const BoxDecl* decl = it->second;
    const Type* elem_type = dbg_->types().FindByName(decl->kernel_type);
    std::vector<uint64_t> boxes;
    for (const Value& entry : entries) {
      Value typed = Value::MakeLValue(elem_type != nullptr ? elem_type : dbg_->types().void_type(),
                                      entry.bits());
      VL_ASSIGN_OR_RETURN(VclValue box, InstantiateBox(decl, typed, nullptr, depth + 1));
      if (box.kind == VclValue::Kind::kBox) {
        boxes.push_back(box.box);
      }
    }
    VclValue result = VclValue::BoxSet(std::move(boxes));
    result.set_kind = "Array";
    return result;
  }

  // --- box instantiation ---

  // Opens a ReadSession page scope for a memo capture; pops it on every exit
  // path so error returns inside the instantiation can't leak a scope.
  class PageScopeGuard {
   public:
    explicit PageScopeGuard(dbg::ReadSession* session) : session_(session) {
      session_->PushPageScope();
    }
    ~PageScopeGuard() {
      if (session_ != nullptr) {
        (void)session_->PopPageScope();
      }
    }
    PageScopeGuard(const PageScopeGuard&) = delete;
    PageScopeGuard& operator=(const PageScopeGuard&) = delete;
    // Closes the scope and hands back its pages (subtree read coverage).
    std::vector<uint64_t> Finish() {
      dbg::ReadSession* session = session_;
      session_ = nullptr;
      return session->PopPageScope();
    }

   private:
    dbg::ReadSession* session_;
  };

  // Memoization engages only when the session's dirty log can prove a
  // snapshot is still valid; default sessions keep exact classic behavior.
  bool MemoEnabled() const {
    return in_->limits_.memoize_boxes && in_->limits_.intern_boxes &&
           dbg_->session().delta_enabled();
  }

  vl::StatusOr<VclValue> InstantiateBox(const BoxDecl* decl, Value object, Scope* lexical,
                                        int depth) {
    if (depth > in_->limits_.max_depth) {
      return vl::FailedPreconditionError("box nesting limit exceeded");
    }
    if (graph_->size() >= in_->limits_.max_boxes) {
      return LimitError();
    }
    bool is_virtual = decl->kernel_type.empty();
    uint64_t addr = 0;
    size_t object_size = 0;
    const Type* type = nullptr;
    if (!is_virtual) {
      type = dbg_->types().FindByName(decl->kernel_type);
      addr = object.is_lvalue() ? object.addr() : object.bits();
      if (addr == 0) {
        return VclValue::Null();
      }
      object_size = type != nullptr ? type->size : 0;
      if (in_->limits_.intern_boxes) {
        auto key = std::make_pair(decl, addr);
        auto found = interned_.find(key);
        if (found != interned_.end()) {
          return VclValue::Box(found->second);
        }
      }
    }

    bool memoize = !is_virtual && MemoEnabled();
    if (memoize) {
      auto key = std::make_pair(decl, addr);
      auto found = in_->memo_.find(key);
      if (found != in_->memo_.end()) {
        uint64_t id = TryReplayMemo(found->second);
        if (id != kNoBox) {
          in_->memo_replays_++;
          if (vl::Tracer::Instance().enabled()) {
            vl::MetricsRegistry::Instance().GetCounter("viewcl.memo.replays")->Add();
          }
          return VclValue::Box(id);
        }
        // Stale or no longer replayable: fall through to re-extract (which
        // recaptures a fresh snapshot below).
        in_->memo_.erase(found);
      }
      in_->memo_misses_++;
      if (vl::Tracer::Instance().enabled()) {
        vl::MetricsRegistry::Instance().GetCounter("viewcl.memo.misses")->Add();
      }
    }
    size_t window_start = graph_->size();
    uint64_t capture_epoch = 0;
    std::optional<PageScopeGuard> memo_scope;
    if (memoize) {
      capture_epoch = dbg_->session().SyncEpoch();
      memo_scope.emplace(&dbg_->session());
    }

    VBox* box = graph_->NewBox(decl->name, decl->kernel_type, addr, object_size);
    if (!is_virtual && in_->limits_.intern_boxes) {
      interned_[std::make_pair(decl, addr)] = box->id();
      intern_by_id_[box->id()] = std::make_pair(decl, addr);
    }
    // Attribute every read below to the kernel type being instantiated
    // (virtual boxes keep the enclosing box's tag), and pull the whole
    // object into the block cache up front: the member walk below then
    // rides ceil(size/block) transport round trips instead of one per field.
    // Under tracing, a per-kernel-type span ("viewcl.box.task_struct") makes
    // the member walk attributable in the explain tree.
    std::optional<vl::ScopedNamedSpan> box_span;
    std::optional<dbg::ReadSession::TagScope> read_tag;
    if (!is_virtual) {
      if (vl::Tracer::Instance().enabled()) {
        box_span.emplace("viewcl.box." + decl->kernel_type);
      }
      read_tag.emplace(&dbg_->session(), decl->kernel_type.c_str());
      dbg_->session().PrefetchObject(addr, type);
    }

    // Box scope: @this plus box-level where bindings.
    Scope box_scope(lexical);
    if (!is_virtual && type != nullptr) {
      box_scope.Set("this", VclValue::Dbg(Value::MakeLValue(type, addr)));
    }
    for (const Binding& binding : decl->where) {
      auto v = EvalExpr(binding.value.get(), &box_scope, depth + 1);
      if (!v.ok()) {
        Warn("where '" + binding.name + "' in " + decl->name + ": " + v.status().ToString());
        box_scope.Set(binding.name, VclValue::Null());
      } else {
        RecordMember(box, binding.name, *v);
        box_scope.Set(binding.name, std::move(v).value());
      }
    }

    for (const ViewDecl& view_decl : decl->views) {
      ViewInstance view;
      view.name = view_decl.name;
      Scope view_scope(&box_scope);
      VL_RETURN_IF_ERROR(
          EvalViewInto(decl, &view_decl, &view_scope, box, &view, depth));
      box->views().push_back(std::move(view));
    }
    if (memoize) {
      CaptureMemo(decl, addr, window_start, capture_epoch, memo_scope->Finish());
    }
    return VclValue::Box(box->id());
  }

  // --- box memoization (incremental refresh) ---

  // Replays a memoized subtree into the current graph: copies the snapshot
  // boxes, remaps window-local references by offset and external references
  // through the current run's intern map. Returns the new root id, or kNoBox
  // when the snapshot is stale (a touched page is dirty) or no longer
  // replayable (evaluation drift changed what is interned when).
  uint64_t TryReplayMemo(const BoxMemo& memo) {
    dbg::ReadSession& session = dbg_->session();
    (void)session.SyncEpoch();
    for (uint64_t page : memo.pages) {
      if (!session.RangeCleanSince(page, 1, memo.epoch)) {
        return kNoBox;
      }
    }
    if (graph_->size() + memo.boxes.size() > in_->limits_.max_boxes) {
      return kNoBox;
    }
    std::map<uint64_t, uint64_t> externals;  // capture-run id -> current id
    for (const auto& [orig, key] : memo.externals) {
      auto it = interned_.find(key);
      if (it == interned_.end()) {
        return kNoBox;
      }
      externals[orig] = it->second;
    }
    for (const auto& [local, key] : memo.interns) {
      // The root (local 0) is known un-interned — the caller's intern lookup
      // just missed. A non-root key already interned means this run built
      // the shared box elsewhere first; replaying would duplicate it.
      if (local != 0 && interned_.find(key) != interned_.end()) {
        return kNoBox;
      }
    }
    uint64_t new_base = graph_->size();
    for (const BoxMemo::BoxSnap& snap : memo.boxes) {
      VBox* box = graph_->NewBox(snap.decl_name, snap.kernel_type, snap.addr,
                                 snap.object_size);
      box->members() = snap.members;
      box->views() = snap.views;
      for (ViewInstance& view : box->views()) {
        for (LinkItem& link : view.links) {
          link.target = RemapMemoId(memo, externals, new_base, link.target);
        }
        for (ContainerItem& container : view.containers) {
          for (uint64_t& member : container.members) {
            member = RemapMemoId(memo, externals, new_base, member);
          }
        }
      }
    }
    for (const auto& [local, key] : memo.interns) {
      interned_[key] = new_base + local;
      intern_by_id_[new_base + local] = key;
    }
    // The replay performed no reads; its page coverage still belongs to any
    // enclosing capture in progress.
    session.NotePages(memo.pages);
    return new_base;
  }

  uint64_t RemapMemoId(const BoxMemo& memo, const std::map<uint64_t, uint64_t>& externals,
                       uint64_t new_base, uint64_t id) const {
    if (id == kNoBox) {
      return kNoBox;
    }
    if (id >= memo.base && id < memo.base + memo.boxes.size()) {
      return new_base + (id - memo.base);
    }
    auto it = externals.find(id);
    return it != externals.end() ? it->second : kNoBox;
  }

  // Snapshots the boxes created in [window_start, graph size) as the memo
  // for (decl, addr). Gives up (storing nothing) if the subtree references
  // an out-of-window box that carries no intern key — such a reference could
  // not be resolved in a future run.
  void CaptureMemo(const BoxDecl* decl, uint64_t addr, size_t window_start,
                   uint64_t epoch, std::vector<uint64_t> pages) {
    BoxMemo memo;
    memo.epoch = epoch;
    memo.base = window_start;
    memo.pages = std::move(pages);
    size_t end = graph_->size();
    memo.boxes.reserve(end - window_start);
    for (size_t id = window_start; id < end; ++id) {
      const VBox* box = graph_->box(id);
      BoxMemo::BoxSnap snap;
      snap.decl_name = box->decl_name();
      snap.kernel_type = box->kernel_type();
      snap.addr = box->addr();
      snap.object_size = box->object_size();
      snap.views = box->views();
      snap.members = box->members();
      for (const ViewInstance& view : snap.views) {
        for (const LinkItem& link : view.links) {
          if (!NoteMemoRef(&memo, link.target, window_start, end)) {
            return;
          }
        }
        for (const ContainerItem& container : view.containers) {
          for (uint64_t member : container.members) {
            if (!NoteMemoRef(&memo, member, window_start, end)) {
              return;
            }
          }
        }
      }
      memo.boxes.push_back(std::move(snap));
      auto it = intern_by_id_.find(id);
      if (it != intern_by_id_.end()) {
        memo.interns.emplace_back(id - window_start, it->second);
      }
    }
    in_->memo_[std::make_pair(decl, addr)] = std::move(memo);
  }

  bool NoteMemoRef(BoxMemo* memo, uint64_t target, size_t start, size_t end) {
    if (target == kNoBox) {
      return true;
    }
    if (target >= start && target < end) {
      return true;
    }
    auto it = intern_by_id_.find(target);
    if (it == intern_by_id_.end()) {
      return false;
    }
    memo->externals[target] = it->second;
    return true;
  }

  // Evaluates a view (after resolving its inheritance chain) into `out`.
  vl::Status EvalViewInto(const BoxDecl* decl, const ViewDecl* view_decl, Scope* scope,
                          VBox* box, ViewInstance* out, int depth) {
    // Inherited views first (recursively).
    if (!view_decl->parent.empty()) {
      const ViewDecl* parent = nullptr;
      for (const ViewDecl& candidate : decl->views) {
        if (candidate.name == view_decl->parent) {
          parent = &candidate;
        }
      }
      if (parent == nullptr) {
        return vl::EvalError("view :" + view_decl->name + " inherits unknown :" +
                             view_decl->parent);
      }
      VL_RETURN_IF_ERROR(EvalViewInto(decl, parent, scope, box, out, depth));
    }
    for (const Binding& binding : view_decl->where) {
      auto v = EvalExpr(binding.value.get(), scope, depth + 1);
      if (!v.ok()) {
        Warn("where '" + binding.name + "': " + v.status().ToString());
        scope->Set(binding.name, VclValue::Null());
      } else {
        RecordMember(box, binding.name, *v);
        scope->Set(binding.name, std::move(v).value());
      }
    }
    for (const ItemDecl& item : view_decl->items) {
      EvalItem(item, scope, box, out, depth);
    }
    return vl::Status::Ok();
  }

  void EvalItem(const ItemDecl& item, Scope* scope, VBox* box, ViewInstance* out, int depth) {
    auto value = EvalExpr(item.value.get(), scope, depth + 1);
    if (!value.ok()) {
      if (item.kind == ItemDecl::Kind::kText) {
        out->texts.push_back(TextItem{item.name, "?"});
      } else if (item.kind == ItemDecl::Kind::kLink) {
        out->links.push_back(LinkItem{item.name, kNoBox});
      }
      Warn("item '" + item.name + "' in " + box->decl_name() + ": " +
           value.status().ToString());
      return;
    }
    switch (item.kind) {
      case ItemDecl::Kind::kText:
        EvalTextItem(item, *value, box, out);
        return;
      case ItemDecl::Kind::kLink: {
        uint64_t target = kNoBox;
        if (value->kind == VclValue::Kind::kBox) {
          target = value->box;
        } else if (value->kind == VclValue::Kind::kBoxSet) {
          target = MakeContainerBox(item.name, value->box_set, value->set_kind);
        } else if (value->kind == VclValue::Kind::kRawSet) {
          target = MakeContainerBox(item.name, MakeRawBoxes(item.name, value->raw_set),
                                    value->set_kind);
        } else if (value->kind == VclValue::Kind::kDbg) {
          Warn("link '" + item.name + "' targets a plain value, not a box");
        }
        out->links.push_back(LinkItem{item.name, target});
        return;
      }
      case ItemDecl::Kind::kContainer: {
        ContainerItem container;
        container.name = item.name;
        if (value->kind == VclValue::Kind::kBoxSet) {
          container.members = value->box_set;
        } else if (value->kind == VclValue::Kind::kRawSet) {
          container.members = MakeRawBoxes(item.name, value->raw_set);
        } else if (value->kind == VclValue::Kind::kBox) {
          container.members.push_back(value->box);
        }
        box->members()[item.name + ".size"] =
            MemberValue::Int(static_cast<int64_t>(container.members.size()));
        out->containers.push_back(std::move(container));
        return;
      }
    }
  }

  void EvalTextItem(const ItemDecl& item, const VclValue& value, VBox* box,
                    ViewInstance* out) {
    if (value.kind == VclValue::Kind::kNull) {
      out->texts.push_back(TextItem{item.name, "<null>"});
      box->members()[item.name] = MemberValue::Null();
      return;
    }
    if (value.kind != VclValue::Kind::kDbg) {
      out->texts.push_back(TextItem{item.name, "<box>"});
      return;
    }
    auto formatted = FormatDecorated(ctx_, &in_->emoji_, item.decorator, value.dbg);
    if (!formatted.ok()) {
      out->texts.push_back(TextItem{item.name, "?"});
      Warn("text '" + item.name + "': " + formatted.status().ToString());
      return;
    }
    out->texts.push_back(TextItem{item.name, formatted->display});
    if (formatted->is_string) {
      box->members()[item.name] = MemberValue::Str(formatted->display);
    } else if (formatted->has_raw) {
      box->members()[item.name] = MemberValue::Int(static_cast<int64_t>(formatted->raw_bits));
    } else {
      box->members()[item.name] = MemberValue::Str(formatted->display);
    }
  }

  void RecordMember(VBox* box, const std::string& name, const VclValue& value) {
    if (value.kind != VclValue::Kind::kDbg) {
      return;
    }
    const Value& v = value.dbg;
    if (v.type() != nullptr && v.IsNull() && !v.is_lvalue()) {
      box->members()[name] = MemberValue::Null();
      return;
    }
    if (!v.is_lvalue() && v.type() != nullptr && v.type()->IsScalar()) {
      box->members()[name] = MemberValue::Int(static_cast<int64_t>(v.bits()));
    }
  }

  // A virtual box that groups a set of member boxes (used for plotted sets
  // and links-to-containers).
  uint64_t MakeContainerBox(const std::string& name, const std::vector<uint64_t>& members,
                            const std::string& kind = "") {
    VBox* box =
        graph_->NewBox(kind.empty() ? "<container:" + name + ">" : kind, "", 0, 0);
    ViewInstance view;
    view.name = "default";
    ContainerItem container;
    container.name = name;
    container.members = members;
    view.containers.push_back(std::move(container));
    box->members()[name + ".size"] = MemberValue::Int(static_cast<int64_t>(members.size()));
    box->views().push_back(std::move(view));
    return box->id();
  }

  // Wraps raw scalar elements into single-text virtual boxes.
  std::vector<uint64_t> MakeRawBoxes(const std::string& name,
                                     const std::vector<Value>& values) {
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < values.size(); ++i) {
      if (graph_->size() >= in_->limits_.max_boxes) {
        break;
      }
      VBox* box = graph_->NewBox("<value>", "", 0, 0);
      ViewInstance view;
      view.name = "default";
      auto formatted = FormatDecorated(ctx_, &in_->emoji_, "", values[i]);
      std::string display = formatted.ok() ? formatted->display : "?";
      view.texts.push_back(TextItem{vl::StrFormat("%s[%zu]", name.c_str(), i), display});
      if (formatted.ok() && formatted->has_raw) {
        box->members()["value"] = MemberValue::Int(static_cast<int64_t>(formatted->raw_bits));
      }
      box->views().push_back(std::move(view));
      ids.push_back(box->id());
    }
    return ids;
  }

  Interpreter* in_;
  dbg::KernelDebugger* dbg_;
  dbg::EvalContext* ctx_;
  std::unique_ptr<ViewGraph> graph_;
  std::map<std::pair<const BoxDecl*, uint64_t>, uint64_t> interned_;
  // Reverse intern map (box id -> key), so memo capture can name the shared
  // boxes a snapshot references and a future replay can resolve them.
  std::map<uint64_t, std::pair<const BoxDecl*, uint64_t>> intern_by_id_;

  size_t off_list_next_ = 0;
  size_t off_hlist_first_ = 0;
  size_t off_hnode_next_ = 0;
  size_t off_rbroot_node_ = 0;
  size_t off_rbcached_root_ = 0;
  size_t off_rb_left_ = 0;
  size_t off_rb_right_ = 0;
  size_t off_radix_rnode_ = 0;
  size_t off_radix_shift_ = 0;
  size_t off_radix_slots_ = 0;
  size_t off_mt_root_ = 0;
  size_t off_mr64_pivot_ = 0;
  size_t off_mr64_slot_ = 0;
  size_t off_ma64_pivot_ = 0;
  size_t off_ma64_slot_ = 0;
};

// ---------------------------------------------------------------------------
// Interpreter façade
// ---------------------------------------------------------------------------

Interpreter::Interpreter(dbg::KernelDebugger* debugger, InterpLimits limits)
    : debugger_(debugger), limits_(limits) {}

Interpreter::~Interpreter() = default;

namespace {

// Walks an expression tree collecting every inline box declaration, so the
// Load-time decorator audit sees `Box [ Text<bogus> x ]` too.
void CollectInlineBoxes(const Expr* e, std::vector<const BoxDecl*>* out);

void CollectBoxDecls(const BoxDecl* decl, std::vector<const BoxDecl*>* out) {
  out->push_back(decl);
  for (const ViewDecl& view : decl->views) {
    for (const ItemDecl& item : view.items) {
      CollectInlineBoxes(item.value.get(), out);
    }
    for (const Binding& binding : view.where) {
      CollectInlineBoxes(binding.value.get(), out);
    }
  }
  for (const Binding& binding : decl->where) {
    CollectInlineBoxes(binding.value.get(), out);
  }
}

void CollectInlineBoxes(const Expr* e, std::vector<const BoxDecl*>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == Expr::Kind::kInlineBox && e->inline_box != nullptr) {
    CollectBoxDecls(e->inline_box.get(), out);
    return;
  }
  for (const ExprPtr& kid : e->kids) {
    CollectInlineBoxes(kid.get(), out);
  }
  for (const SwitchCase& sc : e->cases) {
    for (const ExprPtr& label : sc.labels) {
      CollectInlineBoxes(label.get(), out);
    }
    CollectInlineBoxes(sc.body.get(), out);
  }
  CollectInlineBoxes(e->otherwise.get(), out);
  if (e->for_each != nullptr) {
    for (const Binding& binding : e->for_each->bindings) {
      CollectInlineBoxes(binding.value.get(), out);
    }
    CollectInlineBoxes(e->for_each->yield.get(), out);
  }
}

}  // namespace

vl::Status Interpreter::Load(std::string_view source) {
  vl::ScopedSpan span("viewcl.parse");
  VL_ASSIGN_OR_RETURN(Program program, ParseViewCl(source));

  // Structured errors instead of the old silent behaviors: a duplicate
  // definition inside one chunk used to be last-writer-wins, and an unknown
  // decorator head only surfaced as a per-item eval warning.
  std::vector<const BoxDecl*> decls;
  std::map<std::string, int> chunk_lines;
  for (const std::unique_ptr<BoxDecl>& decl : program.defines) {
    auto [it, inserted] = chunk_lines.emplace(decl->name, decl->line);
    if (!inserted) {
      return vl::ParseError(vl::StrFormat("duplicate definition of '%s' at %d:%d (first "
                                          "defined at line %d)",
                                          decl->name.c_str(), decl->span.line, decl->span.col,
                                          it->second));
    }
    CollectBoxDecls(decl.get(), &decls);
  }
  for (const Binding& binding : program.bindings) {
    CollectInlineBoxes(binding.value.get(), &decls);
  }
  for (const ExprPtr& plot : program.plots) {
    CollectInlineBoxes(plot.get(), &decls);
  }
  for (const BoxDecl* decl : decls) {
    for (const ViewDecl& view : decl->views) {
      for (const ItemDecl& item : view.items) {
        // Only unknown heads are rejected here: argument problems (e.g. an
        // emoji set registered after Load) stay legal until lint/eval.
        if (CheckDecoratorSpec(debugger_->types(), &emoji_, item.decorator) ==
            DecoratorIssue::kUnknownHead) {
          return vl::ParseError(vl::StrFormat("unknown decorator '%s' at %d:%d",
                                              item.decorator.c_str(),
                                              item.decorator_span.line,
                                              item.decorator_span.col));
        }
      }
    }
  }
  if (load_validator_ != nullptr) {
    VL_RETURN_IF_ERROR(load_validator_(program, source));
  }
  // Plan gate: unlike the fail-fast validator, a refusal here still loads the
  // chunk — it just pins the program to the classic interpretation path.
  if (plan_gate_ != nullptr && !plan_blocked_ && !plan_gate_(program, source)) {
    plan_blocked_ = true;
  }
  program_version_++;

  for (std::unique_ptr<BoxDecl>& decl : program.defines) {
    defines_[decl->name] = decl.get();
    owned_decls_.push_back(std::move(decl));
  }
  for (Binding& binding : program.bindings) {
    bindings_.push_back(std::move(binding));
  }
  for (ExprPtr& plot : program.plots) {
    plots_.push_back(std::move(plot));
  }
  // A new chunk can redefine declarations out from under the snapshots;
  // memoization restarts from the next Run.
  memo_.clear();
  return vl::Status::Ok();
}

vl::StatusOr<std::unique_ptr<ViewGraph>> Interpreter::Run() {
  warnings_.clear();
  MaybeRunPlan();
  RunState state(this);
  return state.Run();
}

void Interpreter::MaybeRunPlan() {
  // Prefetch is only profitable through a block cache: every plan read must
  // land somewhere the interpreter's identical read can hit.
  if (!limits_.compile_plans || plan_blocked_ ||
      !debugger_->session().cache_enabled()) {
    return;
  }
  vl::ScopedSpan span("viewcl.plan");
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  if (plan_ == nullptr || plan_version_ != program_version_) {
    plan_ = CompilePlan(defines_, bindings_, plots_, debugger_);
    plan_version_ = program_version_;
    metrics.GetCounter("plan.compiles")->Add();
  } else {
    metrics.GetCounter("plan.cache_hits")->Add();
  }
  PlanExecOptions opts;
  opts.max_boxes = limits_.max_boxes;
  opts.max_container_elems = limits_.max_container_elems;
  opts.workers = limits_.plan_workers;
  opts.parallel_min = limits_.plan_parallel_min;
  ExecutePlan(plan_.get(), debugger_, opts);
}

vl::Json Interpreter::PlanToJson() const {
  if (plan_blocked_) {
    vl::Json j = vl::Json::Object();
    j["blocked"] = vl::Json::Bool(true);
    return j;
  }
  if (plan_ == nullptr) {
    return vl::Json::Null();
  }
  return plan_->ToJson();
}

}  // namespace viewcl
