// Naive ViewCL synthesis (paper §4: "vplot ... can also synthesize naive
// ViewCL code for trivial debugging objectives").
//
// Given a registered kernel type, generates a Box declaration covering its
// directly displayable state: scalar fields as Text items with type-directed
// decorators, char arrays as strings, function pointers symbolized, other
// pointers as raw values (no recursion — that is what makes it "naive"), and
// a plot statement for the given root expression.

#ifndef SRC_VIEWCL_SYNTHESIZE_H_
#define SRC_VIEWCL_SYNTHESIZE_H_

#include <string>
#include <string_view>

#include "src/dbg/type.h"
#include "src/support/status.h"

namespace viewcl {

struct SynthesisOptions {
  int max_fields = 24;        // trivial objectives want a skim, not a dump
  bool include_pointers = true;
};

// Returns a complete ViewCL program: one Box define for `type_name` plus
// `plot <Box>(${root_expr})`. Errors if the type is unknown or opaque.
vl::StatusOr<std::string> SynthesizeViewCl(const dbg::TypeRegistry& types,
                                           std::string_view type_name,
                                           std::string_view root_expr,
                                           const SynthesisOptions& options = SynthesisOptions{});

}  // namespace viewcl

#endif  // SRC_VIEWCL_SYNTHESIZE_H_
