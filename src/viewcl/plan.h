// Extraction plans: ViewCL compiled into a typed op DAG executed with
// vectored, coalesced transport reads (docs/caching.md#extraction-plans).
//
// The interpreter re-derives types, field offsets, and adapter traversal
// logic on every refresh, and every discovered pointer costs one transport
// round trip before the next can be issued. CompilePlan lowers the parsed
// program once — with zero target reads, purely against the TypeRegistry —
// into a plan: per-box typed ops (resolved `@this` field offsets, anchored
// link targets, container adapters with their well-known node offsets,
// decorator string slots). ExecutePlan then walks the live object graph
// wavefront-by-wavefront: every read the next step needs (all sibling
// objects, all chain next-pointers, all rb children) is gathered into ONE
// ReadSession::FetchSpans call, which issues a single Target::ReadVector
// batch for the missing blocks — base latency once per wavefront instead of
// once per pointer.
//
// Plans are a *prefetch oracle*, not a second renderer: execution only warms
// the shared block cache (plus per-op fanout profiles that steer speculation
// away from historically empty subtrees). The interpreter runs unchanged
// afterwards and hits; renders are byte-identical by construction, and a plan
// that diverges from interpreter semantics can only cost spare bytes, never
// correctness. Constructs the compiler cannot lower (helper-heavy
// expressions, exotic sources) fall back per-op: the plan records a bail and
// the interpreter simply pays the classic cost for that subtree.

#ifndef SRC_VIEWCL_PLAN_H_
#define SRC_VIEWCL_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/support/json.h"
#include "src/viewcl/ast.h"

namespace viewcl {

// Accounting for one ExecutePlan call. Mirrors the unconditional `plan.*`
// metrics family (docs/observability.md#stats-schema).
struct PlanStats {
  uint64_t wavefronts = 0;   // batching rounds executed
  uint64_t batches = 0;      // vectored transport requests issued (≤ wavefronts)
  uint64_t spans = 0;        // address ranges gathered across all wavefronts
  uint64_t span_bytes = 0;   // bytes those spans cover (cached or fetched)
  uint64_t boxes = 0;        // box objects scheduled for prefetch
  uint64_t steps = 0;        // adapter traversal steps decoded
  uint64_t parallel_wavefronts = 0;  // wavefronts decoded on worker threads
  uint64_t steered_skips = 0;  // container ops skipped by the fanout profile
  uint64_t soft_errors = 0;    // advisory failures (subtree left cold)

  vl::Json ToJson() const;
};

// A compiled program: box plans keyed by declaration, plus the top-level
// bindings and plot roots. Opaque outside plan.cc; `vctrl plan` renders it
// through ToJson.
class ExtractionPlan {
 public:
  struct Impl;
  explicit ExtractionPlan(std::unique_ptr<Impl> impl);
  ~ExtractionPlan();

  ExtractionPlan(const ExtractionPlan&) = delete;
  ExtractionPlan& operator=(const ExtractionPlan&) = delete;

  // True when every construct lowered without an interpreter bail.
  bool complete() const;
  // Ops the compiler could not lower (left to the interpreter).
  size_t fallback_ops() const;
  // Box declarations compiled into the plan.
  size_t box_count() const;
  // ExecutePlan calls against this plan so far.
  uint64_t executions() const;
  // Stats of the most recent execution.
  const PlanStats& last_stats() const;

  // The full DAG dump: per-box ops with resolved offsets and per-container
  // fanout profiles, plot roots, and the last execution's batch stats.
  vl::Json ToJson() const;

  Impl* impl() { return impl_.get(); }
  const Impl* impl() const { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

// Lowers the accumulated program into a plan. Performs NO target reads: all
// resolution (kernel types, `@this` path offsets, container_of anchors,
// adapter node offsets) runs against the debugger's TypeRegistry, the same
// zero-read analysis vlint uses. Never fails — unloadable constructs become
// per-op fallbacks counted in fallback_ops().
std::unique_ptr<ExtractionPlan> CompilePlan(
    const std::map<std::string, const BoxDecl*>& defines,
    const std::vector<Binding>& bindings,
    const std::vector<ExprPtr>& plots,
    dbg::KernelDebugger* debugger);

struct PlanExecOptions {
  size_t max_boxes = 50000;          // mirror of InterpLimits::max_boxes
  size_t max_container_elems = 4096;  // mirror of max_container_elems
  // Wavefront decode parallelism: when a wavefront holds at least
  // parallel_min worker-eligible steps, they are decoded on `workers`
  // threads against an immutable snapshot of the wavefront's blocks (the
  // session itself is only ever touched by the coordinator).
  int workers = 4;
  size_t parallel_min = 64;
};

// Executes the plan against the debugger's current kernel state, warming the
// ReadSession block cache wavefront-by-wavefront. Requires an enabled block
// cache (no-op passthrough sessions gain nothing from prefetch); the caller
// gates on session().cache_enabled(). Also updates the per-op fanout
// profiles and the unconditional `plan.*` metrics.
PlanStats ExecutePlan(ExtractionPlan* plan, dbg::KernelDebugger* debugger,
                      const PlanExecOptions& options);

}  // namespace viewcl

#endif  // SRC_VIEWCL_PLAN_H_
