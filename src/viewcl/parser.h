// ViewCL parser: tokens -> Program AST.

#ifndef SRC_VIEWCL_PARSER_H_
#define SRC_VIEWCL_PARSER_H_

#include <string_view>

#include "src/support/status.h"
#include "src/viewcl/ast.h"

namespace viewcl {

vl::StatusOr<Program> ParseViewCl(std::string_view source);

}  // namespace viewcl

#endif  // SRC_VIEWCL_PARSER_H_
