#include "src/viewcl/decorate.h"

#include "src/support/str.h"

namespace viewcl {

namespace {

using dbg::Type;
using dbg::TypeKind;
using dbg::Value;

vl::StatusOr<DecoratedText> Text(std::string display, bool is_string) {
  DecoratedText out;
  out.display = std::move(display);
  out.is_string = is_string;
  return out;
}

vl::StatusOr<DecoratedText> Scalar(std::string display, uint64_t raw) {
  DecoratedText out;
  out.display = std::move(display);
  out.raw_bits = raw;
  out.has_raw = true;
  return out;
}

int ParseBaseSuffix(const std::string& suffix) {
  if (suffix == "x" || suffix == "h") return 16;
  if (suffix == "o") return 8;
  if (suffix == "b") return 2;
  return 10;
}

// Reads a string either from a char array lvalue or through a char pointer.
vl::StatusOr<std::string> ReadString(dbg::EvalContext* ctx, Value value) {
  if (value.is_lvalue() && value.type() != nullptr &&
      value.type()->kind == TypeKind::kArray) {
    size_t max = value.type()->array_len;
    VL_ASSIGN_OR_RETURN(std::string s, ctx->session()->ReadCString(value.addr(), max));
    return s;
  }
  VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
  if (loaded.bits() == 0) {
    return std::string("<null>");
  }
  return ctx->session()->ReadCString(loaded.bits());
}

// Default (spec-less) rendering, directed by the value's type.
vl::StatusOr<DecoratedText> FormatDefault(dbg::EvalContext* ctx, Value value) {
  const Type* type = value.type();
  if (type == nullptr) {
    return Text("<void>", false);
  }
  if (type->kind == TypeKind::kArray && type->element->kind == TypeKind::kChar) {
    VL_ASSIGN_OR_RETURN(std::string s, ReadString(ctx, value));
    return Text(std::move(s), true);
  }
  if (type->IsAggregate()) {
    return Text(vl::StrFormat("{%s @0x%llx}", type->name.c_str(),
                              static_cast<unsigned long long>(value.addr())),
                false);
  }
  if (type->kind == TypeKind::kArray) {
    return Text(vl::StrFormat("[%zu x %s]", type->array_len, type->element->name.c_str()),
                false);
  }
  VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
  if (type->kind == TypeKind::kPointer) {
    return Scalar(vl::FormatUnsigned(loaded.bits(), 16), loaded.bits());
  }
  if (type->kind == TypeKind::kBool) {
    return Scalar(loaded.bits() != 0 ? "true" : "false", loaded.bits());
  }
  if (type->kind == TypeKind::kChar) {
    char c = static_cast<char>(loaded.bits());
    return Scalar(c >= 0x20 && c < 0x7f ? vl::StrFormat("'%c'", c)
                                        : vl::StrFormat("'\\x%02x'", c & 0xff),
                  loaded.bits());
  }
  if (type->is_signed) {
    return Scalar(vl::StrFormat("%lld", static_cast<long long>(loaded.AsSigned())),
                  loaded.bits());
  }
  return Scalar(vl::FormatUnsigned(loaded.bits(), 10), loaded.bits());
}

}  // namespace

EmojiRegistry::EmojiRegistry() {
  Register("lock", [](uint64_t v) { return v != 0 ? std::string("\U0001F512 held")
                                                  : std::string("\U0001F513 free"); });
  Register("bool", [](uint64_t v) { return v != 0 ? std::string("✅")
                                                  : std::string("❌"); });
  Register("state", [](uint64_t v) {
    // Task __state bits -> an at-a-glance glyph.
    if (v == 0) return std::string("\U0001F3C3 R");             // running
    if ((v & 0x1) != 0) return std::string("\U0001F634 S");     // interruptible
    if ((v & 0x2) != 0) return std::string("\U0001F4A4 D");     // uninterruptible
    if ((v & 0x4) != 0) return std::string("✋ T");         // stopped
    if ((v & 0x80) != 0) return std::string("\U0001F480 X");    // dead
    return std::string("?");
  });
}

vl::StatusOr<DecoratedText> FormatDecorated(dbg::EvalContext* ctx, const EmojiRegistry* emoji,
                                            const std::string& spec, dbg::Value value) {
  if (spec.empty()) {
    return FormatDefault(ctx, value);
  }
  std::vector<std::string> parts = vl::StrSplit(spec, ':');
  const std::string& head = parts[0];
  const std::string arg = parts.size() > 1 ? parts[1] : "";

  if (head == "string") {
    VL_ASSIGN_OR_RETURN(std::string s, ReadString(ctx, value));
    return Text(std::move(s), true);
  }
  if (head == "bool") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    return Scalar(loaded.bits() != 0 ? "true" : "false", loaded.bits());
  }
  if (head == "char") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    char c = static_cast<char>(loaded.bits());
    return Scalar(vl::StrFormat("'%c'", c), loaded.bits());
  }
  if (head == "raw_ptr") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    return Scalar(vl::FormatUnsigned(loaded.bits(), 16), loaded.bits());
  }
  if (head == "fptr") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    std::string name = ctx->symbols() != nullptr
                           ? ctx->symbols()->FunctionName(loaded.bits())
                           : std::string();
    if (name.empty()) {
      name = loaded.bits() == 0 ? "<null>" : vl::FormatUnsigned(loaded.bits(), 16);
    }
    DecoratedText out;
    out.display = name;
    out.is_string = true;
    out.raw_bits = loaded.bits();
    out.has_raw = true;
    return out;
  }
  if (head == "enum") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    const Type* enum_type = ctx->types()->FindByName(arg);
    if (enum_type != nullptr && enum_type->kind == TypeKind::kEnum) {
      for (const auto& [name, v] : enum_type->enumerators) {
        if (static_cast<uint64_t>(v) == loaded.bits()) {
          DecoratedText out;
          out.display = name;
          out.is_string = true;
          out.raw_bits = loaded.bits();
          out.has_raw = true;
          return out;
        }
      }
    }
    return Scalar(vl::FormatUnsigned(loaded.bits(), 10), loaded.bits());
  }
  if (head == "flag") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    const Type* enum_type = ctx->types()->FindByName(arg);
    std::string names;
    if (enum_type != nullptr && enum_type->kind == TypeKind::kEnum) {
      for (const auto& [name, bit] : enum_type->enumerators) {
        if (bit != 0 && (loaded.bits() & static_cast<uint64_t>(bit)) ==
                            static_cast<uint64_t>(bit)) {
          if (!names.empty()) {
            names += "|";
          }
          names += name;
        }
      }
    }
    if (names.empty()) {
      names = loaded.bits() == 0 ? "0" : vl::FormatUnsigned(loaded.bits(), 16);
    }
    DecoratedText out;
    out.display = names;
    out.is_string = true;
    out.raw_bits = loaded.bits();
    out.has_raw = true;
    return out;
  }
  if (head == "emoji") {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    const EmojiRegistry::Renderer* renderer =
        emoji != nullptr ? emoji->Find(arg) : nullptr;
    if (renderer == nullptr) {
      return vl::EvalError("unknown emoji set '" + arg + "'");
    }
    DecoratedText out;
    out.display = (*renderer)(loaded.bits());
    out.is_string = true;
    out.raw_bits = loaded.bits();
    out.has_raw = true;
    return out;
  }

  // "<int-type>[:<base>]": u8..u64/s8..s64/int/long..., reinterpreted.
  const Type* int_type = ctx->types()->FindByName(head);
  if (int_type != nullptr && int_type->IsScalar()) {
    VL_ASSIGN_OR_RETURN(Value loaded, value.Load(ctx->session()));
    uint64_t bits = loaded.bits();
    if (int_type->size < 8) {
      uint64_t mask = (1ull << (int_type->size * 8)) - 1;
      bits &= mask;
    }
    int base = ParseBaseSuffix(arg);
    if (base == 10 && int_type->is_signed) {
      int64_t v = static_cast<int64_t>(bits);
      if (int_type->size < 8 &&
          (bits & (1ull << (int_type->size * 8 - 1))) != 0) {
        v = static_cast<int64_t>(bits | ~((1ull << (int_type->size * 8)) - 1));
      }
      return Scalar(vl::StrFormat("%lld", static_cast<long long>(v)), loaded.bits());
    }
    return Scalar(vl::FormatUnsigned(bits, base), loaded.bits());
  }
  return vl::EvalError("unknown decorator '" + spec + "'");
}

DecoratorIssue CheckDecoratorSpec(const dbg::TypeRegistry& types, const EmojiRegistry* emoji,
                                  const std::string& spec, std::string* detail) {
  if (spec.empty()) {
    return DecoratorIssue::kNone;
  }
  std::vector<std::string> parts = vl::StrSplit(spec, ':');
  const std::string& head = parts[0];
  const std::string arg = parts.size() > 1 ? parts[1] : "";

  if (head == "string" || head == "bool" || head == "char" || head == "raw_ptr" ||
      head == "fptr") {
    return DecoratorIssue::kNone;
  }
  if (head == "enum" || head == "flag") {
    const Type* enum_type = types.FindByName(arg);
    if (enum_type == nullptr || enum_type->kind != TypeKind::kEnum) {
      if (detail != nullptr) {
        *detail = "'" + arg + "' is not a registered enum type";
      }
      return DecoratorIssue::kBadArgument;
    }
    return DecoratorIssue::kNone;
  }
  if (head == "emoji") {
    if (emoji == nullptr || emoji->Find(arg) == nullptr) {
      if (detail != nullptr) {
        *detail = "unknown emoji set '" + arg + "'";
      }
      return DecoratorIssue::kBadArgument;
    }
    return DecoratorIssue::kNone;
  }
  const Type* int_type = types.FindByName(head);
  if (int_type != nullptr && int_type->IsScalar()) {
    return DecoratorIssue::kNone;  // "<int-type>[:<base>]"; any suffix is legal
  }
  if (detail != nullptr) {
    *detail = "unknown decorator '" + spec + "'";
  }
  return DecoratorIssue::kUnknownHead;
}

}  // namespace viewcl
