// The simplified kernel object graph G(V, E) that ViewCL evaluation produces
// and that ViewQL and the visualizer consume (paper §2.2/§2.3).
//
// Vertices are Boxes (kernel objects or virtual grouping boxes); edges are
// Links and Container memberships. Each box carries its evaluated views
// (display structure), a member-value map (what ViewQL WHERE clauses match
// against), and a display-attribute map (what ViewQL UPDATE mutates).

#ifndef SRC_VIEWCL_GRAPH_H_
#define SRC_VIEWCL_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace viewcl {

inline constexpr uint64_t kNoBox = ~0ull;

// A scalar snapshot of an evaluated member, queryable from ViewQL.
struct MemberValue {
  enum class Kind { kNull, kInt, kString };
  Kind kind = Kind::kNull;
  int64_t num = 0;
  std::string str;

  static MemberValue Null() { return MemberValue{}; }
  static MemberValue Int(int64_t v) { return MemberValue{Kind::kInt, v, ""}; }
  static MemberValue Str(std::string v) { return MemberValue{Kind::kString, 0, std::move(v)}; }
};

struct TextItem {
  std::string name;
  std::string display;  // decorator-formatted text
};

struct LinkItem {
  std::string name;
  uint64_t target = kNoBox;  // box id; kNoBox renders as a null link
};

struct ContainerItem {
  std::string name;
  std::vector<uint64_t> members;  // box ids, in container order
};

// One evaluated view of a box (inheritance already flattened).
struct ViewInstance {
  std::string name;  // "default", "sched", ...
  std::vector<TextItem> texts;
  std::vector<LinkItem> links;
  std::vector<ContainerItem> containers;
};

class VBox {
 public:
  VBox(uint64_t id, std::string decl_name, std::string kernel_type, uint64_t addr,
       size_t object_size)
      : id_(id),
        decl_name_(std::move(decl_name)),
        kernel_type_(std::move(kernel_type)),
        addr_(addr),
        object_size_(object_size) {}

  uint64_t id() const { return id_; }
  const std::string& decl_name() const { return decl_name_; }
  const std::string& kernel_type() const { return kernel_type_; }
  uint64_t addr() const { return addr_; }
  size_t object_size() const { return object_size_; }
  bool is_virtual() const { return addr_ == 0; }

  std::vector<ViewInstance>& views() { return views_; }
  const std::vector<ViewInstance>& views() const { return views_; }
  const ViewInstance* FindView(const std::string& name) const {
    for (const ViewInstance& view : views_) {
      if (view.name == name) {
        return &view;
      }
    }
    return nullptr;
  }

  // The view selected for display (the ViewQL `view` attribute, else default).
  const ViewInstance* ActiveView() const {
    auto it = attrs_.find("view");
    if (it != attrs_.end()) {
      const ViewInstance* chosen = FindView(it->second);
      if (chosen != nullptr) {
        return chosen;
      }
    }
    const ViewInstance* def = FindView("default");
    if (def != nullptr) {
      return def;
    }
    return views_.empty() ? nullptr : &views_[0];
  }

  std::map<std::string, MemberValue>& members() { return members_; }
  const std::map<std::string, MemberValue>& members() const { return members_; }

  std::map<std::string, std::string>& attrs() { return attrs_; }
  const std::map<std::string, std::string>& attrs() const { return attrs_; }
  bool AttrBool(const std::string& key) const {
    auto it = attrs_.find(key);
    return it != attrs_.end() && (it->second == "true" || it->second == "1");
  }

 private:
  uint64_t id_;
  std::string decl_name_;
  std::string kernel_type_;
  uint64_t addr_;
  size_t object_size_;
  std::vector<ViewInstance> views_;
  std::map<std::string, MemberValue> members_;
  std::map<std::string, std::string> attrs_;
};

class ViewGraph {
 public:
  // Creates a box; (decl, addr) pairs are interned by the interpreter, not
  // here. addr == 0 creates a virtual box.
  VBox* NewBox(std::string decl_name, std::string kernel_type, uint64_t addr,
               size_t object_size) {
    auto box = std::make_unique<VBox>(boxes_.size(), std::move(decl_name),
                                      std::move(kernel_type), addr, object_size);
    VBox* raw = box.get();
    boxes_.push_back(std::move(box));
    return raw;
  }

  VBox* box(uint64_t id) { return id < boxes_.size() ? boxes_[id].get() : nullptr; }
  const VBox* box(uint64_t id) const { return id < boxes_.size() ? boxes_[id].get() : nullptr; }
  size_t size() const { return boxes_.size(); }

  std::vector<uint64_t>& roots() { return roots_; }
  const std::vector<uint64_t>& roots() const { return roots_; }

  // First box whose underlying object address matches (the "focus" search).
  const VBox* FindByAddr(uint64_t addr) const {
    for (const auto& box : boxes_) {
      if (!box->is_virtual() && box->addr() == addr) {
        return box.get();
      }
    }
    return nullptr;
  }

  // Outgoing edges (links + container members) of a box's every view.
  std::vector<uint64_t> Neighbors(uint64_t id) const;

  // All boxes reachable from `from` (inclusive) following edges.
  std::vector<uint64_t> Reachable(const std::vector<uint64_t>& from) const;

  // Order-sensitive structural digest of everything a renderer consumes:
  // boxes (names, addresses, views, members, attrs) and roots. Two graphs
  // with equal digests render byte-identically on any back-end; pane refresh
  // uses this to skip re-rendering unchanged graphs
  // (docs/caching.md#incremental-invalidation).
  uint64_t Digest() const;

  // Total bytes of underlying kernel objects (Table 4's per-KB metric).
  uint64_t TotalObjectBytes() const {
    uint64_t total = 0;
    for (const auto& box : boxes_) {
      total += box->object_size();
    }
    return total;
  }

  template <typename Fn>
  void ForEachBox(Fn&& fn) const {
    for (const auto& box : boxes_) {
      fn(*box);
    }
  }

 private:
  std::vector<std::unique_ptr<VBox>> boxes_;
  std::vector<uint64_t> roots_;
};

}  // namespace viewcl

#endif  // SRC_VIEWCL_GRAPH_H_
