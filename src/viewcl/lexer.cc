#include "src/viewcl/lexer.h"

#include <cctype>

#include "src/support/str.h"

namespace viewcl {

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  vl::StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      MarkStart();
      if (pos_ >= src_.size()) {
        out.push_back(Make(TokKind::kEnd, ""));
        return out;
      }
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        VL_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(t);
      } else if (c == '@') {
        VL_ASSIGN_OR_RETURN(Token t, LexPrefixed(TokKind::kAtIdent, '@'));
        out.push_back(t);
      } else if (c == '$' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '{') {
        VL_ASSIGN_OR_RETURN(Token t, LexCExpr());
        out.push_back(t);
      } else if (c == ':' && pos_ + 1 < src_.size() &&
                 (std::isalpha(static_cast<unsigned char>(src_[pos_ + 1])) ||
                  src_[pos_ + 1] == '_')) {
        VL_ASSIGN_OR_RETURN(Token t, LexPrefixed(TokKind::kViewName, ':'));
        out.push_back(t);
      } else {
        VL_ASSIGN_OR_RETURN(Token t, LexPunct());
        out.push_back(t);
      }
    }
  }

 private:
  // Records the position of the next token's first character; Make() stamps
  // every token with this START position (not the end, which is what error
  // messages used to point at) plus the consumed byte range.
  void MarkStart() {
    start_pos_ = pos_;
    start_line_ = line_;
    start_col_ = col_;
  }

  Token Make(TokKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = start_line_;
    t.col = start_col_;
    t.offset = start_pos_;
    t.length = pos_ - start_pos_;
    return t;
  }

  void Bump() {
    if (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Bump();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          Bump();
        }
      } else {
        break;
      }
    }
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                  src_[pos_] == '_')) {
      Bump();
    }
    return Make(TokKind::kIdent, std::string(src_.substr(start, pos_ - start)));
  }

  vl::StatusOr<Token> LexNumber() {
    size_t start = pos_;
    uint64_t value = 0;
    int base = 10;
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      base = 16;
      Bump();
      Bump();
    }
    bool any = false;
    while (pos_ < src_.size()) {
      char c = static_cast<char>(std::tolower(static_cast<unsigned char>(src_[pos_])));
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        break;
      }
      value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
      Bump();
      any = true;
    }
    if (!any) {
      return vl::ParseError(vl::StrFormat("bad number at %d:%d", start_line_, start_col_));
    }
    Token t = Make(TokKind::kInt, std::string(src_.substr(start, pos_ - start)));
    t.ival = value;
    return t;
  }

  vl::StatusOr<Token> LexPrefixed(TokKind kind, char prefix) {
    Bump();  // consume the prefix character
    if (pos_ >= src_.size() || (!std::isalpha(static_cast<unsigned char>(src_[pos_])) &&
                                src_[pos_] != '_')) {
      return vl::ParseError(vl::StrFormat("'%c' must be followed by a name at %d:%d", prefix,
                                          start_line_, start_col_));
    }
    size_t start = pos_;
    while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                  src_[pos_] == '_')) {
      Bump();
    }
    return Make(kind, std::string(src_.substr(start, pos_ - start)));
  }

  vl::StatusOr<Token> LexCExpr() {
    Bump();  // '$'
    Bump();  // '{'
    size_t start = pos_;
    int depth = 1;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          std::string inner(src_.substr(start, pos_ - start));
          Bump();  // closing '}'
          return Make(TokKind::kCExpr, std::string(vl::StrTrim(inner)));
        }
      }
      Bump();
    }
    return vl::ParseError(vl::StrFormat("unterminated ${...} starting at %d:%d", start_line_,
                                        start_col_));
  }

  vl::StatusOr<Token> LexPunct() {
    if (src_.substr(pos_, 2) == "=>") {
      Bump();
      Bump();
      return Make(TokKind::kPunct, "=>");
    }
    if (src_.substr(pos_, 2) == "->") {
      Bump();
      Bump();
      return Make(TokKind::kPunct, "->");
    }
    static const std::string_view kOneChar = "[]{}()<>,:.=|\\";
    char c = src_[pos_];
    if (kOneChar.find(c) == std::string_view::npos) {
      return vl::ParseError(vl::StrFormat("unexpected character '%c' at %d:%d", c, line_, col_));
    }
    Bump();
    return Make(TokKind::kPunct, std::string(1, c));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  size_t start_pos_ = 0;
  int start_line_ = 1;
  int start_col_ = 1;
};

}  // namespace

vl::StatusOr<std::vector<Token>> LexViewCl(std::string_view source) {
  return LexerImpl(source).Run();
}

int CountCodeLines(std::string_view source) {
  int count = 0;
  for (const std::string& line : vl::StrSplit(source, '\n')) {
    std::string_view trimmed = vl::StrTrim(line);
    if (trimmed.empty() || trimmed.substr(0, 2) == "//") {
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace viewcl
