#include "src/viewcl/plan.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/dbg/expr.h"
#include "src/dbg/read_session.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/vkern/kstructs.h"

namespace viewcl {

using dbg::Type;
using dbg::TypeKind;
using dbg::Value;

// ---------------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------------

namespace plan_internal {

struct PlanBox;
struct PContainer;

// A value expression lowered at compile time. kThisPath is the fully typed
// fast path (pure offset arithmetic over the box address); kEvalC is the
// universal fallback — safe to run mid-execution because the enclosing
// object's bytes were fetched by the same wavefront, so the evaluation hits
// the block cache instead of issuing round trips.
struct PExpr {
  enum class Kind { kBail, kNull, kInt, kVar, kEvalC, kThisPath };
  Kind kind = Kind::kBail;
  uint64_t ival = 0;           // kInt
  std::string text;            // kEvalC source / kVar name
  size_t offset = 0;           // kThisPath: accumulated field offset
  const Type* type = nullptr;  // kThisPath: final field type
  bool address_of = false;     // kThisPath: `&@this....`

  std::string Describe() const {
    switch (kind) {
      case Kind::kBail:
        return "<bail>";
      case Kind::kNull:
        return "NULL";
      case Kind::kInt:
        return vl::StrFormat("%llu", static_cast<unsigned long long>(ival));
      case Kind::kVar:
        return "@" + text;
      case Kind::kEvalC:
        return "${" + text + "}";
      case Kind::kThisPath:
        return vl::StrFormat("%s@this+0x%zx:%s", address_of ? "&" : "", offset,
                             type != nullptr ? type->name.c_str() : "?");
    }
    return "?";
  }
};

// One yield position: what a container element (or link/plot slot) expands
// into. kSpeculate covers switch expressions: every structural branch is
// executed unconditionally instead of evaluating the scrutinee — wrong-branch
// speculation costs spare prefetched bytes, never correctness.
struct PYield {
  enum class Kind { kNull, kBail, kBox, kContainer, kSpeculate };
  Kind kind = Kind::kBail;
  // kBox
  PlanBox* box = nullptr;
  PExpr arg;
  size_t anchor_off = 0;  // container_of: subtracted from the arg address
  // kSpeculate
  std::vector<std::unique_ptr<PYield>> branches;
  // kContainer
  std::unique_ptr<PContainer> container;
};

// A compiled container adapter instance.
struct PContainer {
  std::string kind;  // "List", "HList", "RBTree", "Array", ..., "selectFrom"
  PExpr head;
  PExpr count;                                          // Array: optional count
  std::string var;                                      // forEach variable
  std::vector<std::pair<std::string, PExpr>> bindings;  // forEach bindings
  std::unique_ptr<PYield> yield;                        // null for raw sets
  std::string select_box;  // selectFrom element box name
  bool ok = false;

  // Fanout profile: elements produced across executions of this op. Ops
  // that consistently produced nothing in *prior plan executions* stop being
  // speculated (re-probed every 16th plan run so state growth is picked up
  // eventually). prev_total_elems is the fold point: only history from
  // completed runs steers — a shared op touched 64 times within one run must
  // not starve itself mid-run.
  uint64_t total_elems = 0;
  uint64_t prev_total_elems = 0;
  uint64_t executions = 0;
};

struct PlanBox {
  const BoxDecl* decl = nullptr;
  const Type* type = nullptr;  // null => virtual box
  size_t size = 0;
  // Box-level + view-level wheres, in declaration order.
  std::vector<std::pair<std::string, PExpr>> wheres;
  // Link + container items across all views.
  std::vector<std::unique_ptr<PYield>> items;
  // Decorator string slots: expressions whose pointed-to bytes are worth
  // warming (FormatDecorated chases them outside the object span).
  std::vector<PExpr> strings;
  size_t bails = 0;
};

}  // namespace plan_internal

using plan_internal::PContainer;
using plan_internal::PExpr;
using plan_internal::PlanBox;
using plan_internal::PYield;

struct ExtractionPlan::Impl {
  std::map<const BoxDecl*, std::unique_ptr<PlanBox>> boxes;
  std::vector<std::pair<std::string, PExpr>> bindings;
  std::vector<std::unique_ptr<PYield>> plots;
  // Every container op in the plan, for end-of-run profile folds.
  std::vector<PContainer*> ops;
  size_t fallback_ops = 0;
  uint64_t executions = 0;
  PlanStats last;
};

// ---------------------------------------------------------------------------
// Compiler: AST -> plan, zero target reads
// ---------------------------------------------------------------------------

namespace {

class Compiler {
 public:
  Compiler(const std::map<std::string, const BoxDecl*>& defines,
           dbg::TypeRegistry* types, ExtractionPlan::Impl* impl)
      : defines_(defines), types_(types), impl_(impl) {}

  void Run(const std::vector<Binding>& bindings, const std::vector<ExprPtr>& plots) {
    for (const Binding& binding : bindings) {
      // The interpreter evaluates bindings eagerly, so a structural binding
      // (`buckets = Array(...).forEach ...` followed by `plot @buckets`) does
      // its traversal at binding time. Mirror that: compile structural values
      // as root yields; only scalar values land in the root environment.
      const Expr* value = binding.value.get();
      switch (value->kind) {
        case Expr::Kind::kContainerCtor:
        case Expr::Kind::kBoxCtor:
        case Expr::Kind::kSelectFrom:
        case Expr::Kind::kInlineBox:
        case Expr::Kind::kSwitch:
          impl_->plots.push_back(CompileYield(value, nullptr));
          break;
        default:
          impl_->bindings.emplace_back(binding.name,
                                       CompileExpr(value, nullptr));
          break;
      }
    }
    for (const ExprPtr& plot : plots) {
      impl_->plots.push_back(CompileYield(plot.get(), nullptr));
    }
  }

 private:
  void Bail(PlanBox* box) {
    impl_->fallback_ops++;
    if (box != nullptr) {
      box->bails++;
    }
  }

  PlanBox* GetBox(const BoxDecl* decl) {
    auto it = impl_->boxes.find(decl);
    if (it != impl_->boxes.end()) {
      return it->second.get();
    }
    // Insert before compiling the body: recursive declarations (Task links
    // to parent Task) resolve to the in-progress plan node.
    auto& slot = impl_->boxes[decl];
    slot = std::make_unique<PlanBox>();
    PlanBox* box = slot.get();
    box->decl = decl;
    if (!decl->kernel_type.empty()) {
      box->type = types_->FindByName(decl->kernel_type);
      box->size = box->type != nullptr ? box->type->size : 0;
      if (box->type == nullptr) {
        Bail(box);
      }
    }
    for (const Binding& binding : decl->where) {
      box->wheres.emplace_back(binding.name,
                               CompileExpr(binding.value.get(), box->type));
    }
    for (const ViewDecl& view : decl->views) {
      for (const Binding& binding : view.where) {
        box->wheres.emplace_back(binding.name,
                                 CompileExpr(binding.value.get(), box->type));
      }
      for (const ItemDecl& item : view.items) {
        CompileItem(box, item);
      }
    }
    return box;
  }

  void CompileItem(PlanBox* box, const ItemDecl& item) {
    if (item.kind == ItemDecl::Kind::kText) {
      // Plain text values live inside the object span; only `string`
      // decorators chase a pointer out of it, so only those get a slot.
      if (item.decorator.rfind("string", 0) == 0) {
        PExpr e = CompileExpr(item.value.get(), box->type);
        if (e.kind == PExpr::Kind::kEvalC || e.kind == PExpr::Kind::kThisPath) {
          box->strings.push_back(std::move(e));
        }
      }
      return;
    }
    box->items.push_back(CompileYield(item.value.get(), box));
  }

  std::unique_ptr<PYield> CompileYield(const Expr* expr, PlanBox* ctx) {
    auto y = std::make_unique<PYield>();
    if (expr == nullptr) {
      y->kind = PYield::Kind::kNull;
      return y;
    }
    const Type* this_type = ctx != nullptr ? ctx->type : nullptr;
    switch (expr->kind) {
      case Expr::Kind::kNull:
        y->kind = PYield::Kind::kNull;
        return y;
      case Expr::Kind::kBoxCtor: {
        auto it = defines_.find(expr->text);
        if (it == defines_.end()) {
          Bail(ctx);
          return y;  // kBail
        }
        y->arg = expr->kids.empty()
                     ? PExpr{}
                     : CompileExpr(expr->kids[0].get(), this_type);
        if (expr->kids.empty()) {
          y->arg.kind = PExpr::Kind::kNull;
        }
        if (y->arg.kind == PExpr::Kind::kBail) {
          Bail(ctx);
          return y;
        }
        if (!expr->path.empty()) {
          std::optional<size_t> off = AnchorOffset(expr->path);
          if (!off.has_value()) {
            Bail(ctx);
            return y;
          }
          y->anchor_off = *off;
        }
        y->box = GetBox(it->second);
        y->kind = PYield::Kind::kBox;
        return y;
      }
      case Expr::Kind::kInlineBox: {
        y->box = GetBox(expr->inline_box.get());
        y->arg.kind = PExpr::Kind::kNull;
        y->kind = PYield::Kind::kBox;
        return y;
      }
      case Expr::Kind::kSwitch: {
        for (const SwitchCase& sc : expr->cases) {
          AddBranch(y.get(), sc.body.get(), ctx);
        }
        if (expr->otherwise != nullptr) {
          AddBranch(y.get(), expr->otherwise.get(), ctx);
        }
        y->kind = y->branches.empty() ? PYield::Kind::kNull
                                      : PYield::Kind::kSpeculate;
        return y;
      }
      case Expr::Kind::kContainerCtor: {
        y->container = CompileContainer(expr, ctx);
        y->kind = PYield::Kind::kContainer;
        return y;
      }
      case Expr::Kind::kSelectFrom: {
        y->container = CompileSelectFrom(expr, ctx);
        y->kind = PYield::Kind::kContainer;
        return y;
      }
      default:
        // Scalar-valued yields (kCExpr/kAtRef/kInt/kFieldPath) create no
        // boxes; the enclosing object span already covers their reads.
        y->kind = PYield::Kind::kNull;
        return y;
    }
  }

  void AddBranch(PYield* y, const Expr* body, PlanBox* ctx) {
    std::unique_ptr<PYield> branch = CompileYield(body, ctx);
    if (branch->kind == PYield::Kind::kNull || branch->kind == PYield::Kind::kBail) {
      return;  // nothing structural to speculate (bails were counted)
    }
    y->branches.push_back(std::move(branch));
  }

  std::unique_ptr<PContainer> CompileContainer(const Expr* expr, PlanBox* ctx) {
    auto op = std::make_unique<PContainer>();
    op->kind = expr->text;
    const Type* this_type = ctx != nullptr ? ctx->type : nullptr;
    if (!expr->kids.empty()) {
      op->head = CompileExpr(expr->kids[0].get(), this_type);
    }
    op->count.kind = PExpr::Kind::kNull;
    if (expr->kids.size() > 1) {
      op->count = CompileExpr(expr->kids[1].get(), this_type);
    }
    if (expr->for_each != nullptr) {
      const ForEachClause* fe = expr->for_each.get();
      op->var = fe->var;
      for (const Binding& binding : fe->bindings) {
        op->bindings.emplace_back(binding.name,
                                  CompileExpr(binding.value.get(), this_type));
      }
      op->yield = CompileYield(fe->yield.get(), ctx);
    }
    bool known_kind = op->kind == "List" || op->kind == "HList" ||
                      op->kind == "RBTree" || op->kind == "Array" ||
                      op->kind == "XArray" || op->kind == "RadixTree" ||
                      op->kind == "MapleTree";
    op->ok = known_kind && op->head.kind != PExpr::Kind::kBail;
    if (!op->ok) {
      Bail(ctx);
    }
    impl_->ops.push_back(op.get());
    return op;
  }

  std::unique_ptr<PContainer> CompileSelectFrom(const Expr* expr, PlanBox* ctx) {
    auto op = std::make_unique<PContainer>();
    op->kind = "selectFrom";
    op->select_box = expr->text;
    op->var = "__entry";
    if (!expr->kids.empty()) {
      op->head = CompileExpr(expr->kids[0].get(),
                             ctx != nullptr ? ctx->type : nullptr);
    }
    auto it = defines_.find(expr->text);
    if (it != defines_.end() && op->head.kind != PExpr::Kind::kBail) {
      auto y = std::make_unique<PYield>();
      y->kind = PYield::Kind::kBox;
      y->box = GetBox(it->second);
      y->arg.kind = PExpr::Kind::kVar;
      y->arg.text = op->var;
      op->yield = std::move(y);
      op->ok = true;
    } else {
      Bail(ctx);
    }
    impl_->ops.push_back(op.get());
    return op;
  }

  PExpr CompileExpr(const Expr* expr, const Type* this_type) {
    PExpr out;
    if (expr == nullptr) {
      out.kind = PExpr::Kind::kNull;
      return out;
    }
    switch (expr->kind) {
      case Expr::Kind::kNull:
        out.kind = PExpr::Kind::kNull;
        return out;
      case Expr::Kind::kInt:
        out.kind = PExpr::Kind::kInt;
        out.ival = expr->ival;
        return out;
      case Expr::Kind::kAtRef:
        out.kind = PExpr::Kind::kVar;
        out.text = expr->text;
        return out;
      case Expr::Kind::kCExpr:
        return CompileCExpr(expr->text, this_type);
      case Expr::Kind::kFieldPath:
        return CompilePath(expr->path, false, this_type,
                           "@this." + vl::StrJoin(expr->path, "."));
      default:
        return out;  // kBail: structural expressions are not values here
    }
  }

  static PExpr MakeEvalC(std::string text) {
    PExpr out;
    out.kind = PExpr::Kind::kEvalC;
    out.text = std::move(text);
    return out;
  }

  // Pattern-compiles `[&]@this(.field)*` texts to typed offsets; everything
  // else stays a (cache-warm) evaluator call.
  PExpr CompileCExpr(const std::string& text, const Type* this_type) {
    std::string_view s = text;
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.remove_suffix(1);
    }
    bool address_of = !s.empty() && s.front() == '&';
    if (address_of) {
      s.remove_prefix(1);
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
      }
    }
    if (s.rfind("@this", 0) != 0) {
      return MakeEvalC(text);
    }
    s.remove_prefix(5);
    std::vector<std::string> path;
    while (!s.empty()) {
      if (s.front() != '.') {
        return MakeEvalC(text);
      }
      s.remove_prefix(1);
      size_t i = 0;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '_')) {
        ++i;
      }
      if (i == 0) {
        return MakeEvalC(text);
      }
      path.emplace_back(s.substr(0, i));
      s.remove_prefix(i);
    }
    if (path.empty() && !address_of) {
      PExpr out;
      out.kind = PExpr::Kind::kVar;
      out.text = "this";
      return out;
    }
    return CompilePath(path, address_of, this_type, text);
  }

  PExpr CompilePath(const std::vector<std::string>& path, bool address_of,
                    const Type* this_type, const std::string& fallback) {
    if (this_type == nullptr) {
      return MakeEvalC(fallback);
    }
    const Type* t = this_type;
    size_t offset = 0;
    for (const std::string& seg : path) {
      // Only plain aggregate member chains compile to offsets; a pointer or
      // array mid-path needs evaluator semantics (auto-deref, indexing).
      if (t == nullptr ||
          (t->kind != TypeKind::kStruct && t->kind != TypeKind::kUnion)) {
        return MakeEvalC(fallback);
      }
      const dbg::Field* f = t->FindField(seg);
      if (f == nullptr) {
        return MakeEvalC(fallback);
      }
      offset += f->offset;
      t = f->type;
    }
    PExpr out;
    out.kind = PExpr::Kind::kThisPath;
    out.offset = offset;
    out.type = t;
    out.address_of = address_of;
    return out;
  }

  std::optional<size_t> AnchorOffset(const std::vector<std::string>& path) {
    const Type* t = types_->FindByName(path[0]);
    if (t == nullptr) {
      return std::nullopt;
    }
    size_t total = 0;
    for (size_t i = 1; i < path.size(); ++i) {
      if (t->kind == TypeKind::kArray) {
        t = t->element;  // anchors through array fields address element 0
      }
      const dbg::Field* f = t != nullptr ? t->FindField(path[i]) : nullptr;
      if (f == nullptr) {
        return std::nullopt;
      }
      total += f->offset;
      t = f->type;
    }
    return total;
  }

  const std::map<std::string, const BoxDecl*>& defines_;
  dbg::TypeRegistry* types_;
  ExtractionPlan::Impl* impl_;
};

// ---------------------------------------------------------------------------
// Executor: wavefront-by-wavefront batched prefetch
// ---------------------------------------------------------------------------

// Node offsets/types the adapters need, resolved once per execution (the
// interpreter resolves the same set in RunState).
struct AdapterOffsets {
  bool ok = false;
  size_t list_next = 0, hlist_first = 0, hnode_next = 0;
  size_t rbroot_node = 0, rbcached_root = 0, rb_left = 0, rb_right = 0;
  size_t radix_rnode = 0, radix_shift = 0, radix_slots = 0;
  size_t mt_root = 0, mr64_pivot = 0, mr64_slot = 0, ma64_pivot = 0, ma64_slot = 0;
  size_t rb_node_size = 0, radix_node_size = 0, maple_node_size = 0;
  const Type* list_head_type = nullptr;
  const Type* hlist_node_type = nullptr;
  const Type* rb_node_type = nullptr;

  static AdapterOffsets Resolve(dbg::TypeRegistry& reg) {
    AdapterOffsets o;
    bool all = true;
    auto off = [&reg, &all](const char* type_name, const char* field) -> size_t {
      const Type* t = reg.FindByName(type_name);
      const dbg::Field* f = t != nullptr ? t->FindField(field) : nullptr;
      if (f == nullptr) {
        all = false;
        return 0;
      }
      return f->offset;
    };
    auto size_of = [&reg, &all](const char* type_name) -> size_t {
      const Type* t = reg.FindByName(type_name);
      if (t == nullptr) {
        all = false;
        return 0;
      }
      return t->size;
    };
    o.list_next = off("list_head", "next");
    o.hlist_first = off("hlist_head", "first");
    o.hnode_next = off("hlist_node", "next");
    o.rbroot_node = off("rb_root", "rb_node");
    o.rbcached_root = off("rb_root_cached", "rb_root");
    o.rb_left = off("rb_node", "rb_left");
    o.rb_right = off("rb_node", "rb_right");
    o.radix_rnode = off("radix_tree_root", "rnode");
    o.radix_shift = off("radix_tree_node", "shift");
    o.radix_slots = off("radix_tree_node", "slots");
    o.mt_root = off("maple_tree", "ma_root");
    o.mr64_pivot = off("maple_range_64", "pivot");
    o.mr64_slot = off("maple_range_64", "slot");
    o.ma64_pivot = off("maple_arange_64", "pivot");
    o.ma64_slot = off("maple_arange_64", "slot");
    o.rb_node_size = size_of("rb_node");
    o.radix_node_size = size_of("radix_tree_node");
    o.maple_node_size = size_of("maple_node");
    o.list_head_type = reg.FindByName("list_head");
    o.hlist_node_type = reg.FindByName("hlist_node");
    o.rb_node_type = reg.FindByName("rb_node");
    o.ok = all && o.list_head_type != nullptr && o.hlist_node_type != nullptr &&
           o.rb_node_type != nullptr;
    return o;
  }
};

// Read-only view of one wavefront's blocks for worker-thread decode. The
// snapshot map is immutable while workers run; the session itself is only
// ever touched by the coordinator thread.
struct SnapReader {
  const std::unordered_map<uint64_t, std::vector<uint8_t>>* snap;
  uint64_t block_mask;  // block_bytes - 1 (block_bytes is a power of two)

  bool Read(uint64_t addr, void* out, size_t len) const {
    char* dst = static_cast<char*>(out);
    while (len > 0) {
      uint64_t base = addr & ~block_mask;
      auto it = snap->find(base);
      if (it == snap->end()) {
        return false;
      }
      size_t offset = static_cast<size_t>(addr - base);
      if (offset >= it->second.size()) {
        return false;
      }
      size_t take = std::min(len, it->second.size() - offset);
      std::memcpy(dst, it->second.data() + offset, take);
      dst += take;
      addr += take;
      len -= take;
    }
    return true;
  }
};

// Coordinator-side reader: goes through the session (cache hits after the
// wavefront's FetchSpans; exact-range fallback for unreadable blocks).
struct SessionReader {
  dbg::ReadSession* session;

  bool Read(uint64_t addr, void* out, size_t len) const {
    return session->ReadBytes(addr, out, len).ok();
  }
};

using Env = dbg::Environment;

// Per-container-instance bookkeeping. Element budgets and the fanout profile
// are applied by the coordinator only; workers never touch this.
struct ContainerState {
  PContainer* op = nullptr;
  size_t elems = 0;
  const Type* elem_type = nullptr;  // element lvalue type; null => void* entry
};

struct Work {
  enum class Kind { kBox, kPtr, kRbNode, kRadixNode, kMapleNode, kArray, kString };
  // What a decoded kPtr pointer means.
  enum PtrStage : uint32_t {
    kPtrList = 0,
    kPtrHlist,
    kPtrRbRoot,
    kPtrRadixRoot,
    kPtrMapleRoot,
  };

  Kind kind = Kind::kBox;
  const PlanBox* box = nullptr;  // kBox
  // kBox: object address; kPtr: pointer cell location; kRbNode/kRadixNode:
  // node address; kMapleNode: encoded node (flag bits included); kArray: base.
  uint64_t addr = 0;
  // kPtr(list): head sentinel; kMapleNode: max pivot; kArray: element count.
  uint64_t aux = 0;
  // kPtr: PtrStage; kArray: element size.
  uint32_t stage = 0;
  std::shared_ptr<ContainerState> state;
  std::shared_ptr<Env> env;  // scope for complex yields / virtual boxes
  Value sval;                // kString: resolved pointer lvalue
  bool simple = false;       // worker-eligible (yield is Box(@var), no bindings)
};

// Decode output: element tokens (node/entry addresses — the coordinator turns
// them into typed values and boxes) plus continuation steps. Pure data; safe
// to produce on worker threads.
struct Emit {
  std::vector<uint64_t> tokens;
  std::vector<Work> steps;
  bool resolved = true;  // false: data missing (worker snapshot miss)
};

class Executor {
 public:
  Executor(ExtractionPlan::Impl* impl, dbg::KernelDebugger* dbg,
           const PlanExecOptions& opts)
      : impl_(impl),
        dbg_(dbg),
        session_(&dbg->session()),
        opts_(opts),
        offsets_(AdapterOffsets::Resolve(dbg->types())) {}

  PlanStats Run() {
    if (!session_->cache_enabled()) {
      return stats_;
    }
    // Root environment: top-level bindings, evaluated once. Cold reads here
    // are neutral — the interpreter performs the identical evaluation next
    // and hits the blocks these warm.
    auto root_env = std::make_shared<Env>();
    for (const auto& [name, expr] : impl_->bindings) {
      std::optional<Value> v = EvalPExpr(expr, *root_env);
      if (v.has_value()) {
        (*root_env)[name] = *v;
      }
    }
    for (const std::unique_ptr<PYield>& plot : impl_->plots) {
      ApplyYield(plot.get(), nullptr, std::string(), root_env);
    }

    std::unordered_map<uint64_t, std::vector<uint8_t>> snapshot;
    // Budgets bound total work; the wavefront cap is a last-ditch guard
    // against pathological (corrupted-pointer) topologies.
    constexpr uint64_t kMaxWavefronts = 1 << 16;
    while ((!next_works_.empty() || !next_spans_.empty()) &&
           stats_.wavefronts < kMaxWavefronts) {
      std::vector<Work> works = std::move(next_works_);
      std::vector<dbg::ReadSession::Span> spans = std::move(next_spans_);
      next_works_.clear();
      next_spans_.clear();
      stats_.wavefronts++;
      stats_.spans += spans.size();
      for (const dbg::ReadSession::Span& span : spans) {
        stats_.span_bytes += span.len;
      }
      size_t eligible = 0;
      for (const Work& w : works) {
        if (WorkerEligible(w)) {
          ++eligible;
        }
      }
      bool parallel = opts_.workers > 1 && eligible >= opts_.parallel_min;
      snapshot.clear();
      dbg::ReadSession::SpanFetch fetch =
          session_->FetchSpans(spans, parallel ? &snapshot : nullptr);
      stats_.batches += fetch.batches;
      if (parallel) {
        ProcessParallel(works, snapshot);
      } else {
        for (Work& w : works) {
          ProcessWork(w, nullptr);
        }
      }
    }

    impl_->executions++;
    impl_->last = stats_;
    for (PContainer* op : impl_->ops) {
      op->prev_total_elems = op->total_elems;
    }
    vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
    metrics.GetCounter("plan.executions")->Add();
    metrics.GetCounter("plan.wavefronts")->Add(stats_.wavefronts);
    metrics.GetCounter("plan.batches")->Add(stats_.batches);
    metrics.GetCounter("plan.spans")->Add(stats_.spans);
    metrics.GetCounter("plan.boxes")->Add(stats_.boxes);
    metrics.GetCounter("plan.steps")->Add(stats_.steps);
    metrics.GetCounter("plan.parallel_wavefronts")->Add(stats_.parallel_wavefronts);
    metrics.GetCounter("plan.steered_skips")->Add(stats_.steered_skips);
    metrics.GetCounter("plan.soft_errors")->Add(stats_.soft_errors);
    return stats_;
  }

 private:
  // --- wavefront plumbing ---

  void AddSpan(uint64_t addr, size_t len) {
    if (addr == 0 || len == 0) {
      return;
    }
    next_spans_.push_back(dbg::ReadSession::Span{addr, len});
  }

  void EmitWork(Work w) {
    switch (w.kind) {
      case Work::Kind::kBox:
        AddSpan(w.addr, w.box != nullptr ? w.box->size : 0);
        break;
      case Work::Kind::kPtr:
        AddSpan(w.addr, 8);
        break;
      case Work::Kind::kRbNode:
        AddSpan(w.addr, offsets_.rb_node_size);
        break;
      case Work::Kind::kRadixNode:
        AddSpan(w.addr, offsets_.radix_node_size);
        break;
      case Work::Kind::kMapleNode:
        AddSpan(w.addr & ~uint64_t{0xff}, offsets_.maple_node_size);
        break;
      case Work::Kind::kArray:
        AddSpan(w.addr, static_cast<size_t>(w.aux) * w.stage);
        break;
      case Work::Kind::kString:
        break;  // spans were added when the slot was resolved
    }
    next_works_.push_back(std::move(w));
  }

  static bool WorkerEligible(const Work& w) {
    switch (w.kind) {
      case Work::Kind::kPtr:
      case Work::Kind::kRbNode:
      case Work::Kind::kRadixNode:
      case Work::Kind::kMapleNode:
      case Work::Kind::kArray:
        return w.simple;
      default:
        return false;
    }
  }

  void ProcessParallel(std::vector<Work>& works,
                       const std::unordered_map<uint64_t, std::vector<uint8_t>>& snapshot) {
    stats_.parallel_wavefronts++;
    std::vector<size_t> par;  // indices of worker-eligible steps
    for (size_t i = 0; i < works.size(); ++i) {
      if (WorkerEligible(works[i])) {
        par.push_back(i);
      }
    }
    std::vector<Emit> results(par.size());
    SnapReader reader{&snapshot, session_->config().block_bytes - 1};
    int nthreads = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(opts_.workers), par.size()));
    // Workers only read the immutable snapshot and write disjoint result
    // slots; every session/cache access and all bookkeeping stays here on
    // the coordinator.
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([this, t, nthreads, &par, &works, &results, &reader] {
        for (size_t i = static_cast<size_t>(t); i < par.size();
             i += static_cast<size_t>(nthreads)) {
          results[i] = Decode(works[par[i]], reader);
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    // Apply in original order so parallel wavefronts discover work in the
    // same sequence serial ones do.
    size_t next_result = 0;
    for (size_t i = 0; i < works.size(); ++i) {
      if (next_result < par.size() && par[next_result] == i) {
        ProcessWork(works[i], &results[next_result]);
        ++next_result;
      } else {
        ProcessWork(works[i], nullptr);
      }
    }
  }

  void ProcessWork(Work& w, const Emit* precomputed) {
    switch (w.kind) {
      case Work::Kind::kBox:
        ExpandBox(w);
        return;
      case Work::Kind::kString:
        ProcessString(w);
        return;
      default:
        break;
    }
    stats_.steps++;
    SessionReader reader{session_};
    Emit fallback;
    const Emit* emit = precomputed;
    if (emit == nullptr || !emit->resolved) {
      // No worker result (serial wavefront) or snapshot miss: decode through
      // the session, which fetches the exact range on a cache miss.
      fallback = Decode(w, reader);
      emit = &fallback;
    }
    if (!emit->resolved) {
      stats_.soft_errors++;  // genuinely unreadable; subtree stays cold
      return;
    }
    ApplyTokens(w, emit->tokens);
    for (const Work& step : emit->steps) {
      if (step.state != nullptr &&
          step.state->elems >= opts_.max_container_elems) {
        continue;  // budget exhausted; stop chasing this container
      }
      EmitWork(step);
    }
  }

  // --- decode (thread-safe: touches only the work item and the reader) ---

  template <typename Reader>
  Emit Decode(const Work& w, const Reader& r) const {
    Emit out;
    switch (w.kind) {
      case Work::Kind::kPtr: {
        uint64_t p = 0;
        if (!r.Read(w.addr, &p, 8)) {
          out.resolved = false;
          return out;
        }
        switch (w.stage) {
          case Work::kPtrList:
            if (p != 0 && p != w.aux) {
              out.tokens.push_back(p);
              Work next = w;
              next.addr = p + offsets_.list_next;
              out.steps.push_back(std::move(next));
            }
            break;
          case Work::kPtrHlist:
            if (p != 0) {
              out.tokens.push_back(p);
              Work next = w;
              next.addr = p + offsets_.hnode_next;
              out.steps.push_back(std::move(next));
            }
            break;
          case Work::kPtrRbRoot:
            if (p != 0) {
              out.tokens.push_back(p);
              Work next = w;
              next.kind = Work::Kind::kRbNode;
              next.addr = p;
              out.steps.push_back(std::move(next));
            }
            break;
          case Work::kPtrRadixRoot:
            if (p != 0) {
              Work next = w;
              next.kind = Work::Kind::kRadixNode;
              next.addr = p;
              out.steps.push_back(std::move(next));
            }
            break;
          case Work::kPtrMapleRoot:
            if (p != 0) {
              if ((p & 2) == 0) {
                out.tokens.push_back(p);  // direct entry at the root
              } else {
                Work next = w;
                next.kind = Work::Kind::kMapleNode;
                next.addr = p;
                next.aux = ~uint64_t{0};
                out.steps.push_back(std::move(next));
              }
            }
            break;
        }
        return out;
      }
      case Work::Kind::kRbNode: {
        // BFS instead of the interpreter's in-order walk: visit order is
        // irrelevant for prefetch, and siblings batch into one wavefront.
        uint64_t left = 0, right = 0;
        if (!r.Read(w.addr + offsets_.rb_left, &left, 8) ||
            !r.Read(w.addr + offsets_.rb_right, &right, 8)) {
          out.resolved = false;
          return out;
        }
        for (uint64_t child : {left, right}) {
          if (child != 0) {
            out.tokens.push_back(child);
            Work next = w;
            next.addr = child;
            out.steps.push_back(std::move(next));
          }
        }
        return out;
      }
      case Work::Kind::kRadixNode: {
        uint8_t shift = 0;
        if (!r.Read(w.addr + offsets_.radix_shift, &shift, 1)) {
          out.resolved = false;
          return out;
        }
        for (int i = 0; i < vkern::kRadixTreeMapSize; ++i) {
          uint64_t slot = 0;
          if (!r.Read(w.addr + offsets_.radix_slots + static_cast<uint64_t>(i) * 8,
                      &slot, 8)) {
            out.resolved = false;
            return out;
          }
          if (slot == 0) {
            continue;
          }
          if (shift == 0) {
            out.tokens.push_back(slot);
          } else {
            Work next = w;
            next.kind = Work::Kind::kRadixNode;
            next.addr = slot;
            out.steps.push_back(std::move(next));
          }
        }
        return out;
      }
      case Work::Kind::kMapleNode: {
        uint64_t node = w.addr & ~uint64_t{0xff};
        uint32_t type = (w.addr >> 3) & 0xf;
        bool leaf = type < vkern::maple_range_64;
        bool arange = type == vkern::maple_arange_64;
        uint64_t pivot_off = arange ? offsets_.ma64_pivot : offsets_.mr64_pivot;
        uint64_t slot_off = arange ? offsets_.ma64_slot : offsets_.mr64_slot;
        uint32_t pivots = arange ? vkern::kMapleArange64Slots - 1
                                 : vkern::kMapleRange64Slots - 1;
        uint64_t max = w.aux;
        for (uint32_t i = 0; i <= pivots; ++i) {
          uint64_t slot_max = max;
          if (i < pivots) {
            if (!r.Read(node + pivot_off + i * 8ull, &slot_max, 8)) {
              out.resolved = false;
              return out;
            }
            if (slot_max == 0 || slot_max >= max) {
              slot_max = max;  // terminator: this is the last slot
            }
          }
          uint64_t entry = 0;
          if (!r.Read(node + slot_off + i * 8ull, &entry, 8)) {
            out.resolved = false;
            return out;
          }
          if (entry != 0) {
            if (leaf) {
              out.tokens.push_back(entry);
            } else {
              Work next = w;
              next.kind = Work::Kind::kMapleNode;
              next.addr = entry;
              next.aux = slot_max;
              out.steps.push_back(std::move(next));
            }
          }
          if (slot_max == max) {
            break;
          }
        }
        return out;
      }
      case Work::Kind::kArray: {
        // Pure token generation: element lvalues at base + i*size. The span
        // already covers the array bytes, so yields evaluate cache-warm.
        for (uint64_t i = 0; i < w.aux; ++i) {
          out.tokens.push_back(w.addr + i * w.stage);
        }
        return out;
      }
      default:
        return out;
    }
  }

  // --- coordinator-side application ---

  void ApplyTokens(Work& w, const std::vector<uint64_t>& tokens) {
    if (tokens.empty() || w.state == nullptr) {
      return;
    }
    ContainerState* state = w.state.get();
    PContainer* op = state->op;
    const PYield* yield = op->yield.get();
    for (uint64_t token : tokens) {
      if (state->elems >= opts_.max_container_elems) {
        return;
      }
      state->elems++;
      op->total_elems++;
      if (yield == nullptr) {
        continue;  // raw set: the node spans themselves are the prefetch
      }
      Value elem =
          state->elem_type != nullptr
              ? Value::MakeLValue(state->elem_type, token)
              : Value::MakePointer(
                    dbg_->types().PointerTo(dbg_->types().void_type()), token);
      if (w.simple) {
        // Fast path: `yield Box<anchor>(@var)` — token to address, no env.
        std::optional<uint64_t> addr = ObjectAddrOf(elem);
        if (addr.has_value() && *addr != 0) {
          EmitBox(yield->box, *addr - yield->anchor_off);
        }
        continue;
      }
      std::shared_ptr<Env> env = ExtendEnv(w.env, op->var, &elem, op);
      ApplyYield(yield, &elem, op->var, env);
    }
  }

  // `env` is already extended with the forEach var + bindings when `elem`
  // is set (mirrors the interpreter's iteration scope).
  void ApplyYield(const PYield* y, const Value* elem, const std::string& var,
                  const std::shared_ptr<Env>& env) {
    if (y == nullptr) {
      return;
    }
    switch (y->kind) {
      case PYield::Kind::kNull:
      case PYield::Kind::kBail:
        return;
      case PYield::Kind::kSpeculate:
        for (const std::unique_ptr<PYield>& branch : y->branches) {
          ApplyYield(branch.get(), elem, var, env);
        }
        return;
      case PYield::Kind::kContainer:
        StartContainer(y->container.get(), env);
        return;
      case PYield::Kind::kBox: {
        if (y->box == nullptr) {
          return;
        }
        if (y->arg.kind == PExpr::Kind::kNull && y->box->type == nullptr) {
          // Inline virtual box: instantiated in the enclosing scope.
          ExpandVirtual(y->box, env);
          return;
        }
        uint64_t addr = 0;
        if (elem != nullptr && y->arg.kind == PExpr::Kind::kVar &&
            y->arg.text == var) {
          std::optional<uint64_t> a = ObjectAddrOf(*elem);
          if (!a.has_value()) {
            stats_.soft_errors++;
            return;
          }
          addr = *a;
        } else {
          std::optional<Value> v = EvalPExpr(y->arg, *env);
          if (!v.has_value()) {
            return;  // unbound/null argument: nothing to prefetch
          }
          std::optional<uint64_t> a = ObjectAddrOf(*v);
          if (!a.has_value()) {
            stats_.soft_errors++;
            return;
          }
          addr = *a;
        }
        if (addr == 0) {
          return;
        }
        addr -= y->anchor_off;
        if (y->box->type == nullptr) {
          // Named virtual box: the interpreter instantiates it with no
          // lexical scope.
          ExpandVirtual(y->box, nullptr);
          return;
        }
        EmitBox(y->box, addr);
        return;
      }
    }
  }

  void EmitBox(const PlanBox* box, uint64_t addr) {
    if (box == nullptr || addr == 0 || box->type == nullptr) {
      return;
    }
    if (visited_.size() >= opts_.max_boxes) {
      return;
    }
    if (!visited_.emplace(box->decl, addr).second) {
      return;  // interning: shared/cyclic structures terminate
    }
    Work w;
    w.kind = Work::Kind::kBox;
    w.box = box;
    w.addr = addr;
    EmitWork(std::move(w));
  }

  // Expands a fetched non-virtual box: wheres into a fresh `this` scope,
  // then every item yield. Runs in the same wavefront that fetched the
  // object's span, so the evaluations below are cache hits.
  void ExpandBox(const Work& w) {
    stats_.boxes++;
    auto env = std::make_shared<Env>();
    env->emplace("this", Value::MakeLValue(w.box->type, w.addr));
    ExpandInto(w.box, env);
  }

  void ExpandVirtual(const PlanBox* box, const std::shared_ptr<Env>& lexical) {
    if (box == nullptr || virtual_depth_ >= 64) {
      return;
    }
    stats_.boxes++;
    auto env = lexical != nullptr ? std::make_shared<Env>(*lexical)
                                  : std::make_shared<Env>();
    virtual_depth_++;
    ExpandInto(box, env);
    virtual_depth_--;
  }

  void ExpandInto(const PlanBox* box, const std::shared_ptr<Env>& env) {
    for (const auto& [name, expr] : box->wheres) {
      std::optional<Value> v = EvalPExpr(expr, *env);
      if (v.has_value()) {
        (*env)[name] = *v;
      }
    }
    for (const std::unique_ptr<PYield>& item : box->items) {
      ApplyYield(item.get(), nullptr, std::string(), env);
    }
    for (const PExpr& slot : box->strings) {
      StartString(slot, *env);
    }
  }

  // Decorator string slots: warm the bytes FormatDecorated will chase.
  void StartString(const PExpr& slot, const Env& env) {
    std::optional<Value> v = EvalPExpr(slot, env);
    if (!v.has_value() || v->type() == nullptr) {
      return;
    }
    if (v->is_lvalue()) {
      if (v->type()->kind == TypeKind::kPointer) {
        // Two hops: the pointer cell (covered by the object span when the
        // field is inline) now, the pointed-to bytes next wavefront.
        AddSpan(v->addr(), 8);
        Work w;
        w.kind = Work::Kind::kString;
        w.sval = *v;
        next_works_.push_back(std::move(w));
      } else if (v->type()->size != 0) {
        AddSpan(v->addr(), std::min<size_t>(v->type()->size, 256));
      }
      return;
    }
    if (v->type()->kind == TypeKind::kPointer && v->bits() != 0) {
      AddSpan(v->bits(), 64);
    }
  }

  void ProcessString(Work& w) {
    vl::StatusOr<Value> loaded = w.sval.Load(session_);
    if (!loaded.ok()) {
      stats_.soft_errors++;
      return;
    }
    if (loaded->bits() != 0) {
      AddSpan(loaded->bits(), 64);  // first string chunk; plenty for names
    }
  }

  void StartContainer(PContainer* op, const std::shared_ptr<Env>& env) {
    if (op == nullptr || !op->ok || !offsets_.ok) {
      return;
    }
    // Profile steering: an op that produced no elements across prior plan
    // executions is not worth a wavefront; skip it (the interpreter still
    // covers it) and re-probe every 16th plan run in case the structure
    // grew. Only completed-run history steers — never counts from the run
    // in flight, so the first (cold) execution is always exhaustive.
    const uint64_t plan_runs = impl_->executions;  // completed runs only
    if (plan_runs >= 2 && op->prev_total_elems == 0 && (plan_runs % 16) != 0) {
      op->executions++;
      stats_.steered_skips++;
      return;
    }
    op->executions++;
    std::optional<Value> head = EvalPExpr(op->head, *env);
    if (!head.has_value()) {
      stats_.soft_errors++;
      return;
    }
    auto state = std::make_shared<ContainerState>();
    state->op = op;
    Work w;
    w.kind = Work::Kind::kPtr;
    w.state = state;
    w.env = env;
    w.simple = IsSimpleYield(op);

    const std::string& kind = op->kind;
    if (kind == "List") {
      std::optional<uint64_t> addr = ObjectAddrOf(*head);
      if (!addr.has_value() || *addr == 0) {
        return;
      }
      state->elem_type = offsets_.list_head_type;
      w.stage = Work::kPtrList;
      w.addr = *addr + offsets_.list_next;
      w.aux = *addr;  // sentinel: the walk stops back at the head
      EmitWork(std::move(w));
      return;
    }
    if (kind == "HList") {
      std::optional<uint64_t> addr = ObjectAddrOf(*head);
      if (!addr.has_value() || *addr == 0) {
        return;
      }
      state->elem_type = offsets_.hlist_node_type;
      w.stage = Work::kPtrHlist;
      w.addr = *addr + offsets_.hlist_first;
      EmitWork(std::move(w));
      return;
    }
    if (kind == "RBTree") {
      Value cursor = *head;
      if (cursor.type() != nullptr && cursor.type()->kind == TypeKind::kPointer) {
        vl::StatusOr<Value> deref = cursor.Deref(session_, &dbg_->types());
        if (!deref.ok()) {
          stats_.soft_errors++;
          return;
        }
        cursor = *deref;
      }
      uint64_t root_addr;
      if (cursor.type() != nullptr && cursor.type()->name == "rb_root_cached") {
        root_addr = cursor.addr() + offsets_.rbcached_root;
      } else {
        root_addr = cursor.is_lvalue() ? cursor.addr() : cursor.bits();
      }
      if (root_addr == 0) {
        return;
      }
      state->elem_type = offsets_.rb_node_type;
      w.stage = Work::kPtrRbRoot;
      w.addr = root_addr + offsets_.rbroot_node;
      EmitWork(std::move(w));
      return;
    }
    if (kind == "Array") {
      StartArray(op, *head, std::move(w), state, env);
      return;
    }
    if (kind == "XArray" || kind == "RadixTree") {
      std::optional<uint64_t> addr = ObjectAddrOf(*head);
      if (!addr.has_value() || *addr == 0) {
        return;
      }
      w.stage = Work::kPtrRadixRoot;
      w.addr = *addr + offsets_.radix_rnode;
      EmitWork(std::move(w));
      return;
    }
    if (kind == "MapleTree") {
      std::optional<uint64_t> addr = ObjectAddrOf(*head);
      if (!addr.has_value() || *addr == 0) {
        return;
      }
      w.stage = Work::kPtrMapleRoot;
      w.addr = *addr + offsets_.mt_root;
      EmitWork(std::move(w));
      return;
    }
    if (kind == "selectFrom") {
      Value source = *head;
      if (source.type() != nullptr && source.type()->kind == TypeKind::kPointer) {
        vl::StatusOr<Value> deref = source.Deref(session_, &dbg_->types());
        if (!deref.ok()) {
          stats_.soft_errors++;
          return;
        }
        source = *deref;
      }
      uint64_t addr = source.addr();
      const std::string type_name =
          source.type() != nullptr ? source.type()->name : "";
      if (type_name == "maple_tree") {
        w.stage = Work::kPtrMapleRoot;
        w.addr = addr + offsets_.mt_root;
      } else if (type_name == "radix_tree_root" || type_name == "address_space") {
        if (type_name == "address_space") {
          const Type* as = dbg_->types().FindByName("address_space");
          const dbg::Field* f = as != nullptr ? as->FindField("i_pages") : nullptr;
          if (f == nullptr) {
            return;
          }
          addr += f->offset;
        }
        w.stage = Work::kPtrRadixRoot;
        w.addr = addr + offsets_.radix_rnode;
      } else {
        return;  // unknown distill source; interpreter handles it
      }
      if (addr == 0) {
        return;
      }
      EmitWork(std::move(w));
      return;
    }
  }

  void StartArray(PContainer* op, const Value& head, Work w,
                  const std::shared_ptr<ContainerState>& state,
                  const std::shared_ptr<Env>& env) {
    uint64_t base;
    const Type* elem;
    size_t n;
    if (head.is_lvalue() && head.type() != nullptr &&
        head.type()->kind == TypeKind::kArray) {
      base = head.addr();
      elem = head.type()->element;
      n = head.type()->array_len;
    } else if (head.type() != nullptr && head.type()->kind == TypeKind::kPointer) {
      vl::StatusOr<Value> loaded = head.Load(session_);
      if (!loaded.ok()) {
        stats_.soft_errors++;
        return;
      }
      base = loaded->bits();
      elem = loaded->type() != nullptr ? loaded->type()->pointee : nullptr;
      n = opts_.max_container_elems;  // bounded below by the count argument
    } else {
      return;
    }
    if (op->count.kind != PExpr::Kind::kNull) {
      std::optional<Value> count = EvalPExpr(op->count, *env);
      if (count.has_value()) {
        std::optional<uint64_t> bits = ScalarBitsOf(*count);
        if (bits.has_value()) {
          n = std::min<size_t>(n, static_cast<size_t>(*bits));
        }
      }
    } else if (!(head.is_lvalue() && head.type() != nullptr &&
                 head.type()->kind == TypeKind::kArray)) {
      return;  // Array(pointer) requires an explicit count
    }
    n = std::min(n, opts_.max_container_elems);
    if (base == 0 || elem == nullptr || elem->size == 0 || n == 0) {
      return;
    }
    state->elem_type = elem;
    w.kind = Work::Kind::kArray;
    w.addr = base;
    w.aux = n;
    w.stage = static_cast<uint32_t>(elem->size);
    EmitWork(std::move(w));
  }

  static bool IsSimpleYield(const PContainer* op) {
    return op->yield != nullptr && op->yield->kind == PYield::Kind::kBox &&
           op->yield->box != nullptr && op->yield->box->type != nullptr &&
           op->yield->arg.kind == PExpr::Kind::kVar &&
           op->yield->arg.text == op->var && op->bindings.empty();
  }

  // --- value plumbing (coordinator only) ---

  std::shared_ptr<Env> ExtendEnv(const std::shared_ptr<Env>& base,
                                 const std::string& var, const Value* elem,
                                 const PContainer* op) {
    auto env = base != nullptr ? std::make_shared<Env>(*base)
                               : std::make_shared<Env>();
    if (elem != nullptr && !var.empty()) {
      (*env)[var] = *elem;
    }
    if (op != nullptr) {
      for (const auto& [name, expr] : op->bindings) {
        std::optional<Value> v = EvalPExpr(expr, *env);
        if (v.has_value()) {
          (*env)[name] = *v;
        }
      }
    }
    return env;
  }

  std::optional<Value> EvalPExpr(const PExpr& e, const Env& env) {
    switch (e.kind) {
      case PExpr::Kind::kBail:
      case PExpr::Kind::kNull:
        return std::nullopt;
      case PExpr::Kind::kInt:
        return Value::MakeInt(dbg_->types().u64(), e.ival);
      case PExpr::Kind::kVar: {
        auto it = env.find(e.text);
        if (it == env.end()) {
          return std::nullopt;
        }
        return it->second;
      }
      case PExpr::Kind::kThisPath: {
        auto it = env.find("this");
        if (it == env.end() || !it->second.is_lvalue()) {
          return std::nullopt;
        }
        uint64_t addr = it->second.addr() + e.offset;
        if (e.address_of) {
          const Type* t = e.type != nullptr ? e.type : dbg_->types().void_type();
          return Value::MakePointer(dbg_->types().PointerTo(t), addr);
        }
        return Value::MakeLValue(e.type, addr);
      }
      case PExpr::Kind::kEvalC: {
        vl::StatusOr<Value> v =
            dbg::EvalCExpression(&dbg_->context(), e.text, &env);
        if (!v.ok()) {
          return std::nullopt;
        }
        return *v;
      }
    }
    return std::nullopt;
  }

  std::optional<uint64_t> ObjectAddrOf(const Value& v) {
    if (v.is_lvalue()) {
      if (v.type() != nullptr && v.type()->kind == TypeKind::kPointer) {
        vl::StatusOr<Value> loaded = v.Load(session_);
        if (!loaded.ok()) {
          return std::nullopt;
        }
        return loaded->bits();
      }
      return v.addr();
    }
    return v.bits();
  }

  std::optional<uint64_t> ScalarBitsOf(const Value& v) {
    vl::StatusOr<Value> loaded = v.Load(session_);
    if (!loaded.ok()) {
      return std::nullopt;
    }
    return loaded->is_lvalue() ? loaded->addr() : loaded->bits();
  }

  ExtractionPlan::Impl* impl_;
  dbg::KernelDebugger* dbg_;
  dbg::ReadSession* session_;
  PlanExecOptions opts_;
  AdapterOffsets offsets_;
  PlanStats stats_;
  std::vector<Work> next_works_;
  std::vector<dbg::ReadSession::Span> next_spans_;
  std::set<std::pair<const BoxDecl*, uint64_t>> visited_;
  int virtual_depth_ = 0;
};

// --- DAG dump helpers ---

vl::Json YieldToJson(const PYield* y);

vl::Json ContainerToJson(const PContainer* op) {
  vl::Json j = vl::Json::Object();
  j["adapter"] = vl::Json::Str(op->kind);
  j["head"] = vl::Json::Str(op->head.Describe());
  if (op->count.kind != PExpr::Kind::kNull) {
    j["count"] = vl::Json::Str(op->count.Describe());
  }
  if (!op->var.empty()) {
    j["var"] = vl::Json::Str(op->var);
  }
  if (!op->select_box.empty()) {
    j["select"] = vl::Json::Str(op->select_box);
  }
  j["ok"] = vl::Json::Bool(op->ok);
  if (op->yield != nullptr) {
    j["yield"] = YieldToJson(op->yield.get());
  }
  j["executions"] = vl::Json::Int(static_cast<int64_t>(op->executions));
  j["fanout_avg"] = vl::Json::Number(
      op->executions > 0 ? static_cast<double>(op->total_elems) /
                               static_cast<double>(op->executions)
                         : 0.0);
  return j;
}

vl::Json YieldToJson(const PYield* y) {
  vl::Json j = vl::Json::Object();
  switch (y->kind) {
    case PYield::Kind::kNull:
      j["kind"] = vl::Json::Str("null");
      break;
    case PYield::Kind::kBail:
      j["kind"] = vl::Json::Str("bail");
      break;
    case PYield::Kind::kBox:
      j["kind"] = vl::Json::Str("box");
      j["target"] = vl::Json::Str(y->box != nullptr ? y->box->decl->name : "?");
      j["arg"] = vl::Json::Str(y->arg.Describe());
      if (y->anchor_off != 0) {
        j["anchor_off"] = vl::Json::Int(static_cast<int64_t>(y->anchor_off));
      }
      break;
    case PYield::Kind::kSpeculate: {
      j["kind"] = vl::Json::Str("speculate");
      vl::Json branches = vl::Json::Array();
      for (const std::unique_ptr<PYield>& b : y->branches) {
        branches.Append(YieldToJson(b.get()));
      }
      j["branches"] = std::move(branches);
      break;
    }
    case PYield::Kind::kContainer:
      j["kind"] = vl::Json::Str("container");
      if (y->container != nullptr) {
        j["container"] = ContainerToJson(y->container.get());
      }
      break;
  }
  return j;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

vl::Json PlanStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["wavefronts"] = vl::Json::Int(static_cast<int64_t>(wavefronts));
  j["batches"] = vl::Json::Int(static_cast<int64_t>(batches));
  j["spans"] = vl::Json::Int(static_cast<int64_t>(spans));
  j["span_bytes"] = vl::Json::Int(static_cast<int64_t>(span_bytes));
  j["boxes"] = vl::Json::Int(static_cast<int64_t>(boxes));
  j["steps"] = vl::Json::Int(static_cast<int64_t>(steps));
  j["parallel_wavefronts"] = vl::Json::Int(static_cast<int64_t>(parallel_wavefronts));
  j["steered_skips"] = vl::Json::Int(static_cast<int64_t>(steered_skips));
  j["soft_errors"] = vl::Json::Int(static_cast<int64_t>(soft_errors));
  return j;
}

ExtractionPlan::ExtractionPlan(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
ExtractionPlan::~ExtractionPlan() = default;

bool ExtractionPlan::complete() const { return impl_->fallback_ops == 0; }
size_t ExtractionPlan::fallback_ops() const { return impl_->fallback_ops; }
size_t ExtractionPlan::box_count() const { return impl_->boxes.size(); }
uint64_t ExtractionPlan::executions() const { return impl_->executions; }
const PlanStats& ExtractionPlan::last_stats() const { return impl_->last; }

vl::Json ExtractionPlan::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["complete"] = vl::Json::Bool(complete());
  j["fallback_ops"] = vl::Json::Int(static_cast<int64_t>(impl_->fallback_ops));
  j["executions"] = vl::Json::Int(static_cast<int64_t>(impl_->executions));
  vl::Json boxes = vl::Json::Object();
  for (const auto& [decl, box] : impl_->boxes) {
    vl::Json b = vl::Json::Object();
    b["kernel_type"] = vl::Json::Str(decl->kernel_type);
    b["size"] = vl::Json::Int(static_cast<int64_t>(box->size));
    b["wheres"] = vl::Json::Int(static_cast<int64_t>(box->wheres.size()));
    b["strings"] = vl::Json::Int(static_cast<int64_t>(box->strings.size()));
    b["bails"] = vl::Json::Int(static_cast<int64_t>(box->bails));
    vl::Json items = vl::Json::Array();
    for (const std::unique_ptr<PYield>& item : box->items) {
      items.Append(YieldToJson(item.get()));
    }
    b["items"] = std::move(items);
    boxes[decl->name] = std::move(b);
  }
  j["boxes"] = std::move(boxes);
  vl::Json plots = vl::Json::Array();
  for (const std::unique_ptr<PYield>& plot : impl_->plots) {
    plots.Append(YieldToJson(plot.get()));
  }
  j["plots"] = std::move(plots);
  j["last_exec"] = impl_->last.ToJson();
  return j;
}

std::unique_ptr<ExtractionPlan> CompilePlan(
    const std::map<std::string, const BoxDecl*>& defines,
    const std::vector<Binding>& bindings,
    const std::vector<ExprPtr>& plots,
    dbg::KernelDebugger* debugger) {
  auto impl = std::make_unique<ExtractionPlan::Impl>();
  Compiler compiler(defines, &debugger->types(), impl.get());
  compiler.Run(bindings, plots);
  return std::make_unique<ExtractionPlan>(std::move(impl));
}

PlanStats ExecutePlan(ExtractionPlan* plan, dbg::KernelDebugger* debugger,
                      const PlanExecOptions& options) {
  Executor executor(plan->impl(), debugger, options);
  return executor.Run();
}

}  // namespace viewcl
