#include "src/viewcl/graph.h"

#include <cstdint>
#include <set>

namespace viewcl {

namespace {

// SplitMix64-style accumulator (same mixing constants as vl::Rng):
// order-sensitive, deterministic, seed-free.
struct DigestAcc {
  uint64_t h = 0x9e3779b97f4a7c15ull;

  void Mix(uint64_t v) {
    uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    h = z ^ (z >> 31);
  }

  void MixStr(const std::string& s) {
    Mix(s.size());
    uint64_t word = 0;
    size_t filled = 0;
    for (char c : s) {
      word = (word << 8) | static_cast<uint8_t>(c);
      if (++filled == 8) {
        Mix(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled != 0) {
      Mix(word);
    }
  }
};

}  // namespace

std::vector<uint64_t> ViewGraph::Neighbors(uint64_t id) const {
  std::vector<uint64_t> out;
  const VBox* b = box(id);
  if (b == nullptr) {
    return out;
  }
  for (const ViewInstance& view : b->views()) {
    for (const LinkItem& link : view.links) {
      if (link.target != kNoBox) {
        out.push_back(link.target);
      }
    }
    for (const ContainerItem& container : view.containers) {
      for (uint64_t member : container.members) {
        if (member != kNoBox) {
          out.push_back(member);
        }
      }
    }
  }
  return out;
}

std::vector<uint64_t> ViewGraph::Reachable(const std::vector<uint64_t>& from) const {
  std::set<uint64_t> seen;
  std::vector<uint64_t> stack(from.begin(), from.end());
  std::vector<uint64_t> out;
  while (!stack.empty()) {
    uint64_t id = stack.back();
    stack.pop_back();
    if (id == kNoBox || !seen.insert(id).second) {
      continue;
    }
    out.push_back(id);
    for (uint64_t next : Neighbors(id)) {
      stack.push_back(next);
    }
  }
  return out;
}

uint64_t ViewGraph::Digest() const {
  DigestAcc acc;
  acc.Mix(boxes_.size());
  for (const auto& box : boxes_) {
    acc.MixStr(box->decl_name());
    acc.MixStr(box->kernel_type());
    acc.Mix(box->addr());
    acc.Mix(box->object_size());
    acc.Mix(box->views().size());
    for (const ViewInstance& view : box->views()) {
      acc.MixStr(view.name);
      acc.Mix(view.texts.size());
      for (const TextItem& text : view.texts) {
        acc.MixStr(text.name);
        acc.MixStr(text.display);
      }
      acc.Mix(view.links.size());
      for (const LinkItem& link : view.links) {
        acc.MixStr(link.name);
        acc.Mix(link.target);
      }
      acc.Mix(view.containers.size());
      for (const ContainerItem& container : view.containers) {
        acc.MixStr(container.name);
        acc.Mix(container.members.size());
        for (uint64_t member : container.members) {
          acc.Mix(member);
        }
      }
    }
    acc.Mix(box->members().size());
    for (const auto& [name, value] : box->members()) {
      acc.MixStr(name);
      acc.Mix(static_cast<uint64_t>(value.kind));
      acc.Mix(static_cast<uint64_t>(value.num));
      acc.MixStr(value.str);
    }
    acc.Mix(box->attrs().size());
    for (const auto& [key, value] : box->attrs()) {
      acc.MixStr(key);
      acc.MixStr(value);
    }
  }
  acc.Mix(roots_.size());
  for (uint64_t root : roots_) {
    acc.Mix(root);
  }
  return acc.h;
}

}  // namespace viewcl
