#include "src/viewcl/graph.h"

#include <set>

namespace viewcl {

std::vector<uint64_t> ViewGraph::Neighbors(uint64_t id) const {
  std::vector<uint64_t> out;
  const VBox* b = box(id);
  if (b == nullptr) {
    return out;
  }
  for (const ViewInstance& view : b->views()) {
    for (const LinkItem& link : view.links) {
      if (link.target != kNoBox) {
        out.push_back(link.target);
      }
    }
    for (const ContainerItem& container : view.containers) {
      for (uint64_t member : container.members) {
        if (member != kNoBox) {
          out.push_back(member);
        }
      }
    }
  }
  return out;
}

std::vector<uint64_t> ViewGraph::Reachable(const std::vector<uint64_t>& from) const {
  std::set<uint64_t> seen;
  std::vector<uint64_t> stack(from.begin(), from.end());
  std::vector<uint64_t> out;
  while (!stack.empty()) {
    uint64_t id = stack.back();
    stack.pop_back();
    if (id == kNoBox || !seen.insert(id).second) {
      continue;
    }
    out.push_back(id);
    for (uint64_t next : Neighbors(id)) {
      stack.push_back(next);
    }
  }
  return out;
}

}  // namespace viewcl
