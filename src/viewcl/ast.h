// ViewCL abstract syntax (paper §2.2's core syntax, extended to cover every
// construct the paper's example programs use: named views with inheritance,
// where-clauses, switch-case, container constructors with forEach closures,
// anchored box constructors (container_of), inline virtual boxes, and the
// Array.selectFrom distill converter).

#ifndef SRC_VIEWCL_AST_H_
#define SRC_VIEWCL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/support/diag.h"

namespace viewcl {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Binding {
  std::string name;
  ExprPtr value;
  int line = 0;
  vl::Span span;  // the bound name
};

struct ItemDecl {
  enum class Kind { kText, kLink, kContainer };
  Kind kind = Kind::kText;
  std::string name;
  std::string decorator;  // raw spec between <>, e.g. "u64:x", "flag:vm"
  ExprPtr value;          // text value / link target / container content
  int line = 0;
  vl::Span span;            // the item name (or first path segment)
  vl::Span decorator_span;  // the spec between <>, when present
};

struct ViewDecl {
  std::string name;          // "default" for the anonymous view
  std::string parent;        // inherited view name; empty if none
  std::vector<ItemDecl> items;
  std::vector<Binding> where;
  vl::Span span;         // the :name token (or the '[' of the anonymous view)
  vl::Span parent_span;  // the inherited :name token, when present
};

struct BoxDecl {
  std::string name;         // "Task"; generated for inline boxes
  std::string kernel_type;  // "task_struct"; empty => virtual box
  std::vector<ViewDecl> views;
  std::vector<Binding> where;  // box-level where, shared by all views
  int line = 0;
  vl::Span span;       // the definition name
  vl::Span type_span;  // the kernel type between <>, when present
};

struct ForEachClause {
  std::string var;
  std::vector<Binding> bindings;
  ExprPtr yield;
};

struct SwitchCase {
  std::vector<ExprPtr> labels;
  ExprPtr body;
};

struct Expr {
  enum class Kind {
    kCExpr,         // ${...}: text
    kAtRef,         // @name: text ("this" included)
    kInt,           // ival
    kNull,          // NULL literal
    kFieldPath,     // bare a.b.c relative to @this: path
    kSwitch,        // scrutinee = kids[0]; cases; otherwise
    kBoxCtor,       // text = box name; anchor; kids[0] = argument
    kContainerCtor, // text = container kind; kids = args; for_each optional
    kSelectFrom,    // kids[0] = source; text = element box name
    kInlineBox,     // inline_box declaration; evaluated as a fresh virtual box
  };

  Kind kind;
  std::string text;
  uint64_t ival = 0;
  std::vector<std::string> path;    // kFieldPath / kBoxCtor anchor path
  std::vector<ExprPtr> kids;
  std::vector<SwitchCase> cases;    // kSwitch
  ExprPtr otherwise;                // kSwitch
  std::unique_ptr<ForEachClause> for_each;  // kContainerCtor
  std::unique_ptr<BoxDecl> inline_box;      // kInlineBox
  int line = 0;
  vl::Span span;  // the expression's head token
};

inline ExprPtr NewExpr(Expr::Kind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

inline ExprPtr NewExpr(Expr::Kind kind, vl::Span span) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = span.line;
  e->span = span;
  return e;
}

struct Program {
  std::vector<std::unique_ptr<BoxDecl>> defines;
  std::vector<Binding> bindings;   // top-level name = expr
  std::vector<ExprPtr> plots;      // plot statements, in order
};

}  // namespace viewcl

#endif  // SRC_VIEWCL_AST_H_
