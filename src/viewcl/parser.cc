#include "src/viewcl/parser.h"

#include <set>

#include "src/support/str.h"
#include "src/viewcl/lexer.h"

namespace viewcl {

namespace {

bool IsContainerKind(const std::string& name) {
  return name == "List" || name == "HList" || name == "RBTree" || name == "Array" ||
         name == "XArray" || name == "MapleTree" || name == "RadixTree";
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> toks) : toks_(std::move(toks)) {}

  vl::StatusOr<Program> Run() {
    Program program;
    while (!AtEnd()) {
      if (IsIdent("define")) {
        VL_ASSIGN_OR_RETURN(std::unique_ptr<BoxDecl> decl, ParseDefine());
        program.defines.push_back(std::move(decl));
      } else if (IsIdent("plot")) {
        Advance();
        VL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        program.plots.push_back(std::move(expr));
      } else if (Cur().kind == TokKind::kIdent && Peek(1).kind == TokKind::kPunct &&
                 Peek(1).text == "=") {
        Binding binding;
        binding.name = Cur().text;
        binding.line = Cur().line;
        binding.span = Cur().span();
        Advance();
        Advance();  // '='
        VL_ASSIGN_OR_RETURN(binding.value, ParseExpr());
        program.bindings.push_back(std::move(binding));
      } else {
        return Err("expected 'define', 'plot', or a binding");
      }
    }
    return program;
  }

 private:
  const Token& Cur() const { return toks_[idx_]; }
  const Token& Peek(size_t n) const {
    size_t i = idx_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool AtEnd() const { return Cur().kind == TokKind::kEnd; }
  void Advance() {
    if (!AtEnd()) {
      ++idx_;
    }
  }

  bool IsIdent(std::string_view text) const {
    return Cur().kind == TokKind::kIdent && Cur().text == text;
  }
  bool IsPunct(std::string_view text) const {
    return Cur().kind == TokKind::kPunct && Cur().text == text;
  }
  bool EatPunct(std::string_view text) {
    if (IsPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  bool EatIdent(std::string_view text) {
    if (IsIdent(text)) {
      Advance();
      return true;
    }
    return false;
  }

  // Extends `start` to cover everything up to the last consumed token.
  vl::Span SpanFrom(vl::Span start) const {
    if (idx_ > 0) {
      const Token& prev = toks_[idx_ - 1];
      size_t end = prev.offset + prev.length;
      if (end > start.offset) {
        start.length = end - start.offset;
      }
    }
    return start;
  }

  vl::Status Err(std::string_view message) const {
    return vl::ParseError(vl::StrFormat("%.*s at %d:%d (near '%s')",
                                        static_cast<int>(message.size()), message.data(),
                                        Cur().line, Cur().col, Cur().text.c_str()));
  }

  vl::Status ExpectPunct(std::string_view text) {
    if (!EatPunct(text)) {
      return Err(vl::StrFormat("expected '%.*s'", static_cast<int>(text.size()), text.data()));
    }
    return vl::Status::Ok();
  }

  // Consumes a ':' that may have been lexed as part of a ":name" view-name
  // token (e.g. the decorator "u64:x" or an unspaced "name:expr"); in that
  // case the token is morphed into the bare identifier that followed the ':'.
  bool EatColon() {
    if (EatPunct(":")) {
      return true;
    }
    if (Cur().kind == TokKind::kViewName) {
      toks_[idx_].kind = TokKind::kIdent;
      return true;
    }
    return false;
  }

  vl::Status ExpectColon() {
    if (!EatColon()) {
      return Err("expected ':'");
    }
    return vl::Status::Ok();
  }

  vl::StatusOr<std::string> ExpectIdent() {
    if (Cur().kind != TokKind::kIdent) {
      return Err("expected an identifier");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // --- define ---

  vl::StatusOr<std::unique_ptr<BoxDecl>> ParseDefine() {
    int line = Cur().line;
    Advance();  // 'define'
    vl::Span name_span = Cur().span();
    VL_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    defined_boxes_.insert(name);
    if (!EatIdent("as")) {
      return Err("expected 'as'");
    }
    if (!EatIdent("Box")) {
      return Err("expected 'Box'");
    }
    auto decl = std::make_unique<BoxDecl>();
    decl->name = name;
    decl->line = line;
    decl->span = name_span;
    if (EatPunct("<")) {
      // Kernel type name, possibly "struct foo".
      std::string type_name;
      vl::Span type_span = Cur().span();
      while (Cur().kind == TokKind::kIdent) {
        if (!type_name.empty()) {
          type_name += " ";
        }
        type_name += Cur().text;
        Advance();
      }
      decl->type_span = SpanFrom(type_span);
      VL_RETURN_IF_ERROR(ExpectPunct(">"));
      decl->kernel_type = type_name;
    }
    VL_RETURN_IF_ERROR(ParseBoxBody(decl.get()));
    return decl;
  }

  vl::Status ParseBoxBody(BoxDecl* decl) {
    if (IsPunct("[")) {
      // Single anonymous view: it becomes "default".
      ViewDecl view;
      view.name = "default";
      view.span = Cur().span();
      VL_RETURN_IF_ERROR(ParseViewBody(&view));
      if (IsIdent("where")) {
        VL_RETURN_IF_ERROR(ParseWhere(&view.where));
      }
      decl->views.push_back(std::move(view));
      return vl::Status::Ok();
    }
    if (!EatPunct("{")) {
      return Err("expected '[' or '{' after Box declaration");
    }
    while (!IsPunct("}")) {
      if (Cur().kind != TokKind::kViewName) {
        return Err("expected a view name (:name)");
      }
      ViewDecl view;
      std::string first = Cur().text;
      vl::Span first_span = Cur().span();
      Advance();
      if (EatPunct("=>")) {
        if (Cur().kind != TokKind::kViewName) {
          return Err("expected a view name after '=>'");
        }
        view.parent = first;
        view.parent_span = first_span;
        view.name = Cur().text;
        view.span = Cur().span();
        Advance();
      } else {
        view.name = first;
        view.span = first_span;
      }
      VL_RETURN_IF_ERROR(ParseViewBody(&view));
      if (IsIdent("where")) {
        VL_RETURN_IF_ERROR(ParseWhere(&view.where));
      }
      decl->views.push_back(std::move(view));
    }
    VL_RETURN_IF_ERROR(ExpectPunct("}"));
    if (IsIdent("where")) {
      VL_RETURN_IF_ERROR(ParseWhere(&decl->where));
    }
    return vl::Status::Ok();
  }

  vl::Status ParseViewBody(ViewDecl* view) {
    VL_RETURN_IF_ERROR(ExpectPunct("["));
    while (!IsPunct("]")) {
      VL_RETURN_IF_ERROR(ParseItem(view));
    }
    return ExpectPunct("]");
  }

  vl::Status ParseItem(ViewDecl* view) {
    int line = Cur().line;
    if (EatIdent("Text")) {
      std::string decorator;
      vl::Span decorator_span;
      if (EatPunct("<")) {
        decorator_span = Cur().span();
        VL_ASSIGN_OR_RETURN(decorator, ParseDecoratorSpec());
        decorator_span = SpanFrom(decorator_span);
        VL_RETURN_IF_ERROR(ExpectPunct(">"));
      }
      while (true) {
        ItemDecl item;
        item.kind = ItemDecl::Kind::kText;
        item.decorator = decorator;
        item.decorator_span = decorator_span;
        item.line = line;
        VL_RETURN_IF_ERROR(ParseTextDecl(&item));
        view->items.push_back(std::move(item));
        if (!EatPunct(",")) {
          break;
        }
      }
      return vl::Status::Ok();
    }
    if (EatIdent("Link")) {
      ItemDecl item;
      item.kind = ItemDecl::Kind::kLink;
      item.line = line;
      item.span = Cur().span();
      VL_ASSIGN_OR_RETURN(item.name, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectPunct("->"));
      VL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      view->items.push_back(std::move(item));
      return vl::Status::Ok();
    }
    if (EatIdent("Container")) {
      ItemDecl item;
      item.kind = ItemDecl::Kind::kContainer;
      item.line = line;
      item.span = Cur().span();
      VL_ASSIGN_OR_RETURN(item.name, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectColon());
      VL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      view->items.push_back(std::move(item));
      return vl::Status::Ok();
    }
    return Err("expected Text, Link, or Container");
  }

  vl::StatusOr<std::string> ParseDecoratorSpec() {
    std::string spec;
    while (Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kInt) {
      spec += Cur().text;
      Advance();
      if (EatColon()) {
        spec += ":";
        continue;
      }
      break;
    }
    if (spec.empty()) {
      return Err("empty decorator spec");
    }
    return spec;
  }

  vl::Status ParseTextDecl(ItemDecl* item) {
    if (Cur().kind == TokKind::kAtIdent) {
      // `Text @last_ma_min`: the item shows a where-clause variable.
      item->name = Cur().text;
      item->span = Cur().span();
      item->value = NewExpr(Expr::Kind::kAtRef, Cur().span());
      item->value->text = Cur().text;
      Advance();
      return vl::Status::Ok();
    }
    if (Cur().kind != TokKind::kIdent) {
      return Err("expected a field name");
    }
    // Either `name : expr` or a bare (dotted) field path.
    std::vector<std::string> path;
    path.push_back(Cur().text);
    vl::Span span = Cur().span();
    Advance();
    while (IsPunct(".")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::string part, ExpectIdent());
      path.push_back(std::move(part));
    }
    span = SpanFrom(span);
    item->span = span;
    if (path.size() == 1 && EatColon()) {
      item->name = path[0];
      VL_ASSIGN_OR_RETURN(item->value, ParseExpr());
      return vl::Status::Ok();
    }
    item->name = vl::StrJoin(path, ".");
    item->value = NewExpr(Expr::Kind::kFieldPath, span);
    item->value->path = std::move(path);
    return vl::Status::Ok();
  }

  vl::Status ParseWhere(std::vector<Binding>* out) {
    Advance();  // 'where'
    VL_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      Binding binding;
      binding.line = Cur().line;
      binding.span = Cur().span();
      VL_ASSIGN_OR_RETURN(binding.name, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectPunct("="));
      VL_ASSIGN_OR_RETURN(binding.value, ParseExpr());
      out->push_back(std::move(binding));
    }
    return ExpectPunct("}");
  }

  // --- expressions ---

  vl::StatusOr<ExprPtr> ParseExpr() {
    vl::Span span = Cur().span();
    switch (Cur().kind) {
      case TokKind::kCExpr: {
        ExprPtr e = NewExpr(Expr::Kind::kCExpr, span);
        e->text = Cur().text;
        Advance();
        return e;
      }
      case TokKind::kAtIdent: {
        ExprPtr e = NewExpr(Expr::Kind::kAtRef, span);
        e->text = Cur().text;
        Advance();
        return e;
      }
      case TokKind::kInt: {
        ExprPtr e = NewExpr(Expr::Kind::kInt, span);
        e->ival = Cur().ival;
        Advance();
        return e;
      }
      case TokKind::kIdent:
        break;
      default:
        return Err("expected an expression");
    }

    const std::string& head = Cur().text;
    if (head == "NULL" || head == "null") {
      Advance();
      return NewExpr(Expr::Kind::kNull, span);
    }
    if (head == "switch") {
      return ParseSwitch();
    }
    if (head == "Box") {
      return ParseInlineBox();
    }
    if (head == "Array" && Peek(1).kind == TokKind::kPunct && Peek(1).text == "." &&
        Peek(2).kind == TokKind::kIdent && Peek(2).text == "selectFrom") {
      Advance();  // Array
      Advance();  // .
      Advance();  // selectFrom
      VL_RETURN_IF_ERROR(ExpectPunct("("));
      ExprPtr e = NewExpr(Expr::Kind::kSelectFrom, span);
      VL_ASSIGN_OR_RETURN(ExprPtr source, ParseExpr());
      e->kids.push_back(std::move(source));
      VL_RETURN_IF_ERROR(ExpectPunct(","));
      // The span names the element box: that is the reference lint checks.
      e->span = Cur().span();
      VL_ASSIGN_OR_RETURN(e->text, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    if (IsContainerKind(head) && defined_boxes_.count(head) == 0 &&
        Peek(1).kind == TokKind::kPunct && Peek(1).text == "(") {
      // A user `define` with a builtin container's name shadows the builtin.
      return ParseContainerCtor();
    }
    if (Peek(1).kind == TokKind::kPunct && (Peek(1).text == "(" || Peek(1).text == "<")) {
      return ParseBoxCtor();
    }
    // Bare field path relative to @this.
    ExprPtr e = NewExpr(Expr::Kind::kFieldPath, span);
    e->path.push_back(head);
    Advance();
    while (IsPunct(".")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::string part, ExpectIdent());
      e->path.push_back(std::move(part));
    }
    e->span = SpanFrom(e->span);
    return e;
  }

  vl::StatusOr<ExprPtr> ParseSwitch() {
    vl::Span span = Cur().span();
    Advance();  // 'switch'
    ExprPtr e = NewExpr(Expr::Kind::kSwitch, span);
    VL_ASSIGN_OR_RETURN(ExprPtr scrutinee, ParseExpr());
    e->kids.push_back(std::move(scrutinee));
    VL_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (EatIdent("case")) {
        SwitchCase sc;
        while (true) {
          VL_ASSIGN_OR_RETURN(ExprPtr label, ParseExpr());
          sc.labels.push_back(std::move(label));
          if (!EatPunct(",")) {
            break;
          }
        }
        VL_RETURN_IF_ERROR(ExpectColon());
        VL_ASSIGN_OR_RETURN(sc.body, ParseExpr());
        e->cases.push_back(std::move(sc));
      } else if (EatIdent("otherwise")) {
        VL_RETURN_IF_ERROR(ExpectColon());
        VL_ASSIGN_OR_RETURN(e->otherwise, ParseExpr());
      } else {
        return Err("expected 'case' or 'otherwise'");
      }
    }
    VL_RETURN_IF_ERROR(ExpectPunct("}"));
    return e;
  }

  vl::StatusOr<ExprPtr> ParseInlineBox() {
    vl::Span span = Cur().span();
    int line = span.line;
    Advance();  // 'Box'
    auto decl = std::make_unique<BoxDecl>();
    decl->name = vl::StrFormat("<inline:%d>", line);
    decl->line = line;
    decl->span = span;
    if (EatPunct("<")) {
      decl->type_span = Cur().span();
      VL_ASSIGN_OR_RETURN(decl->kernel_type, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectPunct(">"));
    }
    VL_RETURN_IF_ERROR(ParseBoxBody(decl.get()));
    ExprPtr e = NewExpr(Expr::Kind::kInlineBox, span);
    e->inline_box = std::move(decl);
    return e;
  }

  vl::StatusOr<ExprPtr> ParseContainerCtor() {
    ExprPtr e = NewExpr(Expr::Kind::kContainerCtor, Cur().span());
    e->text = Cur().text;
    Advance();  // kind
    VL_RETURN_IF_ERROR(ExpectPunct("("));
    if (!IsPunct(")")) {
      while (true) {
        VL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        e->kids.push_back(std::move(arg));
        if (!EatPunct(",")) {
          break;
        }
      }
    }
    VL_RETURN_IF_ERROR(ExpectPunct(")"));
    // Optional .forEach |var| { bindings... yield expr }
    if (IsPunct(".") && Peek(1).kind == TokKind::kIdent && Peek(1).text == "forEach") {
      Advance();  // .
      Advance();  // forEach
      auto fe = std::make_unique<ForEachClause>();
      VL_RETURN_IF_ERROR(ExpectPunct("|"));
      VL_ASSIGN_OR_RETURN(fe->var, ExpectIdent());
      VL_RETURN_IF_ERROR(ExpectPunct("|"));
      VL_RETURN_IF_ERROR(ExpectPunct("{"));
      while (!IsIdent("yield")) {
        if (AtEnd() || IsPunct("}")) {
          return Err("forEach body must end with a 'yield'");
        }
        Binding binding;
        binding.line = Cur().line;
        binding.span = Cur().span();
        VL_ASSIGN_OR_RETURN(binding.name, ExpectIdent());
        VL_RETURN_IF_ERROR(ExpectPunct("="));
        VL_ASSIGN_OR_RETURN(binding.value, ParseExpr());
        fe->bindings.push_back(std::move(binding));
      }
      Advance();  // 'yield'
      VL_ASSIGN_OR_RETURN(fe->yield, ParseExpr());
      VL_RETURN_IF_ERROR(ExpectPunct("}"));
      e->for_each = std::move(fe);
    }
    return e;
  }

  vl::StatusOr<ExprPtr> ParseBoxCtor() {
    ExprPtr e = NewExpr(Expr::Kind::kBoxCtor, Cur().span());
    e->text = Cur().text;
    Advance();  // box name
    if (EatPunct("<")) {
      // Anchor path: type.member.member...
      VL_ASSIGN_OR_RETURN(std::string part, ExpectIdent());
      e->path.push_back(std::move(part));
      while (EatPunct(".")) {
        VL_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
        e->path.push_back(std::move(next));
      }
      VL_RETURN_IF_ERROR(ExpectPunct(">"));
    }
    VL_RETURN_IF_ERROR(ExpectPunct("("));
    VL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    e->kids.push_back(std::move(arg));
    VL_RETURN_IF_ERROR(ExpectPunct(")"));
    return e;
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
  std::set<std::string> defined_boxes_;
};

}  // namespace

vl::StatusOr<Program> ParseViewCl(std::string_view source) {
  VL_ASSIGN_OR_RETURN(std::vector<Token> toks, LexViewCl(source));
  return ParserImpl(std::move(toks)).Run();
}

}  // namespace viewcl
