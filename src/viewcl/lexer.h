// ViewCL lexer.
//
// ViewCL's surface syntax mixes its own tokens with embedded C expressions:
// `${...}` chunks are captured verbatim and later handed to the debugger's
// C-expression engine (paper §2.2).

#ifndef SRC_VIEWCL_LEXER_H_
#define SRC_VIEWCL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diag.h"
#include "src/support/status.h"

namespace viewcl {

enum class TokKind {
  kEnd,
  kIdent,     // define, Box, foo_bar — keywords are identified by the parser
  kAtIdent,   // @name (text is the name without '@')
  kViewName,  // :name (text is the name without ':')
  kInt,
  kCExpr,     // ${ ... } (text is the inner C expression)
  kPunct,     // [ ] { } ( ) < > , : . = | and the digraphs => ->
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  uint64_t ival = 0;
  // Start position of the token's first source character (1-based line/col)
  // plus its byte extent — `${...}` and prefixed tokens include the sigils.
  int line = 0;
  int col = 0;
  size_t offset = 0;
  size_t length = 0;

  vl::Span span() const { return vl::Span{line, col, offset, length}; }
};

// Tokenizes `source`; `//` comments run to end of line.
vl::StatusOr<std::vector<Token>> LexViewCl(std::string_view source);

// Number of non-blank, non-comment-only source lines — the "LOC" metric
// Table 2 reports per figure program.
int CountCodeLines(std::string_view source);

}  // namespace viewcl

#endif  // SRC_VIEWCL_LEXER_H_
