// Text decorators (paper Table 1): Int, Bool, Char, Enum, String, RawPtr,
// FunPtr, Flag, EMOJI.
//
// A decorator spec is the string between <> in a Text item, e.g. "u64:x",
// "enum:maple_type", "flag:vm_flags_bits", "emoji:lock". Flag and Enum specs
// name a registered enum type whose enumerators provide the bit/value names.

#ifndef SRC_VIEWCL_DECORATE_H_
#define SRC_VIEWCL_DECORATE_H_

#include <functional>
#include <map>
#include <string>

#include "src/dbg/expr.h"
#include "src/dbg/value.h"
#include "src/support/status.h"

namespace viewcl {

class EmojiRegistry {
 public:
  using Renderer = std::function<std::string(uint64_t value)>;

  EmojiRegistry();  // installs the built-in sets ("lock", "state", "bool")

  void Register(const std::string& id, Renderer renderer) {
    renderers_[id] = std::move(renderer);
  }
  const Renderer* Find(const std::string& id) const {
    auto it = renderers_.find(id);
    return it != renderers_.end() ? &it->second : nullptr;
  }

 private:
  std::map<std::string, Renderer> renderers_;
};

struct DecoratedText {
  std::string display;     // what the box shows
  bool is_string = false;  // true when the display is the semantic value
  uint64_t raw_bits = 0;   // the underlying scalar (when applicable)
  bool has_raw = false;
};

// Formats `value` per the decorator `spec` (empty spec = type-directed
// default). Reads target memory for strings/loads as needed.
vl::StatusOr<DecoratedText> FormatDecorated(dbg::EvalContext* ctx, const EmojiRegistry* emoji,
                                            const std::string& spec, dbg::Value value);

// Structural validation of a decorator spec — the zero-read counterpart of
// FormatDecorated, shared by Interp::Load and the static analyzer.
enum class DecoratorIssue {
  kNone,
  kUnknownHead,   // head names neither a builtin decorator nor a scalar type
  kBadArgument,   // enum:/flag: arg is not an enum type; emoji: set unknown
};

// `detail` (optional) receives a human-readable description of the problem.
DecoratorIssue CheckDecoratorSpec(const dbg::TypeRegistry& types, const EmojiRegistry* emoji,
                                  const std::string& spec, std::string* detail = nullptr);

}  // namespace viewcl

#endif  // SRC_VIEWCL_DECORATE_H_
