// The evaluation corpus: ViewCL programs porting the representative figures of
// *Understanding the Linux Kernel* to the simulated 6.1-style kernel (paper
// Table 2), and the hypothetical debugging objectives with their
// natural-language phrasings and reference ViewQL (paper Table 3).

#ifndef SRC_VISION_FIGURES_H_
#define SRC_VISION_FIGURES_H_

#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/vkern/workload.h"

namespace vision {

struct FigureDef {
  int index;                 // Table 2 row number (1-based)
  const char* id;            // short stable id ("fig3_4")
  const char* ulk_figure;    // "Fig 3-4" (or "-" for added figures)
  const char* description;   // Table 2 "Diagram description"
  const char* delta;         // data-structure change class: "O", "o", "d", "D"
  const char* viewcl;        // the full ViewCL program
};

// All 21 Table 2 figures, in paper order.
const std::vector<FigureDef>& AllFigures();
const FigureDef* FindFigure(const std::string& id);

struct ObjectiveDef {
  const char* figure_id;     // which figure's plot it refines
  const char* description;   // Table 3 "Debugging objective"
  const char* nl_request;    // what the developer types at vchat
  const char* viewql;        // the reference hand-written ViewQL
};

// The 10 Table 3 debugging objectives.
const std::vector<ObjectiveDef>& AllObjectives();

// Figure programs reference two harness-provided symbols: `target_task` (a
// workload process) and `target_file` (an open file with cached pages). This
// registers both against the debugger, choosing a process that owns sockets
// and a file with a populated page cache.
void RegisterFigureSymbols(dbg::KernelDebugger* debugger, vkern::Workload* workload);

}  // namespace vision

#endif  // SRC_VISION_FIGURES_H_
