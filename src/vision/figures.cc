#include "src/vision/figures.h"

#include "src/support/str.h"

namespace vision {

namespace {

// Δ legend (paper Table 2): "O" negligible, "o" variables/fields changed,
// "d" fields/relations changed, "D" underlying data structure replaced.

const char* kFig3_4 = R"(// Fig 3-4: process parenthood tree
define Task as Box<task_struct> {
  :default [
    Text pid, comm
    Text<string> state: ${task_state(@this)}
  ]
  :default => :show_children [
    Container children: List(${&@this.children}).forEach |node| {
      yield Task<task_struct.sibling>(@node)
    }
  ]
}
plot Task(${&init_task})
)";

const char* kFig3_6 = R"(// Fig 3-6: the PID hash table
define Task as Box<task_struct> [ Text pid, comm ]
define Pid as Box<pid> [
  Text nr
  Container tasks: HList(${&@this.tasks_head}).forEach |n| {
    yield Task<task_struct.pids.node>(@n)
  }
]
buckets = Array(${pid_hash}).forEach |bucket| {
  yield switch ${@bucket.first == NULL} {
    case ${1}: NULL
    otherwise: Box [
      Container chain: HList(${&@bucket}).forEach |n| {
        yield Pid<pid.pid_chain>(@n)
      }
    ]
  }
}
plot @buckets
)";

const char* kFig4_5 = R"(// Fig 4-5: IRQ descriptors and shared action chains
define IrqAction as Box<irqaction> [
  Text<string> name
  Text irq
  Text<fptr> handler
  Link next -> IrqAction(${@this.next})
]
define IrqDesc as Box<irq_desc> [
  Text irq: ${@this.irq_data.irq}
  Text<string> name
  Text depth, tot_count
  Text<bool> is_configured: ${@this.action != NULL}
  Text<string> chip: ${@this.irq_data.chip->name}
  Link action -> IrqAction(${@this.action})
]
descs = Array(${irq_desc}).forEach |d| { yield IrqDesc(${&@d}) }
plot @descs
)";

const char* kFig6_1 = R"(// Fig 6-1: dynamic timers on the per-CPU timer wheel
define Timer as Box<timer_list> [
  Text expires
  Text<fptr> function
]
define TimerBase as Box<timer_base> [
  Text cpu, clk
  Container buckets: Array(${@this.vectors}).forEach |bucket| {
    yield switch ${@bucket.first == NULL} {
      case ${1}: NULL
      otherwise: Box [
        Container timers: HList(${&@bucket}).forEach |n| {
          yield Timer<timer_list.entry>(@n)
        }
      ]
    }
  }
]
plot TimerBase(${&timer_bases[0]})
plot TimerBase(${&timer_bases[1]})
)";

const char* kFig7_1 = R"(// Fig 7-1: the CFS run queue (vruntime-ordered red-black tree)
define Task as Box<task_struct> {
  :default [
    Text pid, comm
    Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
  ]
  :default => :sched [
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
  ]
}
define CfsRq as Box<cfs_rq> [
  Text nr_running, min_vruntime
  Container tasks_timeline: RBTree(${&@this.tasks_timeline}).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
  }
]
define Rq as Box<rq> [
  Text cpu, clock
  Link curr -> Task(${@this.curr})
  Link cfs -> CfsRq(${&@this.cfs})
]
plot Rq(${cpu_rq(0)})
plot Rq(${cpu_rq(1)})
)";

const char* kFig8_2 = R"(// Fig 8-2: the buddy system and page descriptors
define Page as Box<page> [
  Text<u64:x> flags
  Text order
]
define FreeArea as Box<free_area> [
  Text nr_free
  Container blocks: List(${&@this.free_list}).forEach |n| {
    yield Page<page.lru>(@n)
  }
]
define Zone as Box<zone> [
  Text<string> name
  Text free_pages, spanned_pages
  Container areas: Array(${@this.free_area}).forEach |a| { yield FreeArea(${&@a}) }
]
plot Zone(${&contig_page_data})
)";

const char* kFig8_4 = R"(// Fig 8-4: kmem caches and the slab allocator
define Slab as Box<slab> [
  Text inuse, free_idx
  Text<u64:x> s_mem
]
define KmemCache as Box<kmem_cache> [
  Text<string> name
  Text object_size, size, num
  Text active_objects, total_objects
  Container partial: List(${&@this.slabs_partial}).forEach |n| { yield Slab<slab.list>(@n) }
  Container full: List(${&@this.slabs_full}).forEach |n| { yield Slab<slab.list>(@n) }
  Container free: List(${&@this.slabs_free}).forEach |n| { yield Slab<slab.list>(@n) }
]
caches = List(${&cache_chain}).forEach |n| { yield KmemCache<kmem_cache.cache_list>(@n) }
plot @caches
)";

const char* kFig9_2 = R"(// Fig 9-2: the process address space (maple tree of VMAs; paper Figs 3/4)
define FileRef as Box<file> [
  Text<string> path: ${@this.f_dentry->d_name}
]
define VMArea as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
  Text<flag:vm_flags_bits> vm_flags
  Text<bool> is_writable: ${(@this.vm_flags & VM_WRITE) != 0}
  Link vm_file -> FileRef(${@this.vm_file})
]
define MapleNode as Box<maple_node> [
  Text<enum:maple_type> ntype: @type
  Text<bool> leaf: @is_leaf
  Container slots: @slots
  Container pivots: @pivots
] where {
  node = ${mte_to_node(@this)}
  type = ${mte_node_type(@this)}
  is_leaf = ${mte_is_leaf(@this)}
  pivots = switch @type {
    case ${maple_arange_64}: Array(${@node->ma64.pivot})
    otherwise: Array(${@node->mr64.pivot})
  }
  slots = switch @type {
    case ${maple_leaf_64}, ${maple_range_64}: Array(${@node->mr64.slot}).forEach |item| {
      yield switch ${@item == NULL} {
        case ${1}: NULL
        otherwise: VMArea(@item)
      }
    }
    case ${maple_arange_64}: Array(${@node->ma64.slot}).forEach |item| {
      yield switch ${@item == NULL} {
        case ${1}: NULL
        otherwise: MapleNode(@item)
      }
    }
    otherwise: NULL
  }
}
define MapleTree as Box<maple_tree> [
  Text<u64:x> root_enode: ma_root
  Text<emoji:lock> ma_lock
  Link ma_root -> @root
] where {
  root = switch ${xa_is_node(@this.ma_root)} {
    case ${1}: MapleNode(${@this.ma_root})
    otherwise: NULL
  }
}
define MMStruct as Box<mm_struct> {
  :default [
    Text<u64:x> mmap_base, start_code, end_code, start_brk, brk, start_stack
    Text map_count
    Text mm_users: ${@this.mm_users.counter}
    Text mm_count: ${@this.mm_count.counter}
  ]
  :default => :show_mt [
    Link mm_maple_tree -> @mm_mt
  ]
  :default => :show_addrspace [
    Container mm_addr_space: @mm_as
  ]
} where {
  mm_mt = MapleTree(${&@this.mm_mt})
  mm_as = Array.selectFrom(${&@this.mm_mt}, VMArea)
}
plot MMStruct(${target_task.mm})
)";

const char* kFig11_1 = R"(// Fig 11-1: components for signal handling
define SigQueue as Box<sigqueue> [ Text signo, pid_from ]
define Sigaction as Box<k_sigaction> [
  Text<fptr> handler: ${@this.sa.sa_handler}
  Text<bool> is_configured: ${@this.sa.sa_handler != 0 && @this.sa.sa_handler != 1}
]
define Sighand as Box<sighand_struct> [
  Text count
  Container action: Array(${@this.action}).forEach |a| { yield Sigaction(${&@a}) }
]
define SignalStruct as Box<signal_struct> [
  Text nr_threads
  Container shared_pending: List(${&@this.shared_pending.list}).forEach |n| {
    yield SigQueue<sigqueue.list>(@n)
  }
]
define Task as Box<task_struct> [
  Text pid, comm
  Text<u64:x> blocked: ${@this.blocked.sig}
  Link signal -> SignalStruct(${@this.signal})
  Link sighand -> Sighand(${@this.sighand})
  Container pending: List(${&@this.pending.list}).forEach |n| {
    yield SigQueue<sigqueue.list>(@n)
  }
]
plot Task(${target_task})
)";

const char* kFig12_3 = R"(// Fig 12-3: the fd array
define Inode as Box<inode> [
  Text i_ino
  Text<u64:x> i_mode
]
define File as Box<file> [
  Text<string> fops: ${@this.f_op->name}
  Text f_flags
  Text refs: ${@this.f_count.counter}
  Link f_inode -> Inode(${@this.f_inode})
]
define FdTable as Box<files_struct> [
  Text refs: ${@this.count.counter}
  Text next_fd
  Container fd: Array(${@this.fdtab.fd}, ${@this.fdtab.max_fds}).forEach |f| {
    yield File(@f)
  }
]
plot FdTable(${target_task.files})
)";

const char* kFig13_3 = R"(// Fig 13-3: device drivers and kobjects
define Kobject as Box<kobject> [
  Text<string> name
  Text refcount: ${@this.kref.refcount.counter}
]
define Driver as Box<device_driver> [
  Text<string> name
]
define Device as Box<device> [
  Text<string> init_name
  Text<u64:x> devt
  Link kobj -> Kobject(${&@this.kobj})
  Link parent -> Device(${@this.parent})
  Link driver -> Driver(${@this.driver})
]
define Bus as Box<bus_type> [
  Text<string> name
  Container devices: List(${&@this.devices_list}).forEach |n| {
    yield Device<device.bus_node>(@n)
  }
  Container drivers: List(${&@this.drivers_list}).forEach |n| {
    yield Driver<device_driver.bus_node>(@n)
  }
]
plot Bus(${&platform_bus_type})
)";

const char* kFig14_3 = R"(// Fig 14-3: block device descriptors and superblocks
define Bdev as Box<block_device> [
  Text<string> bd_disk_name
  Text bd_nr_sectors
  Text<u64:x> bd_dev
]
define SuperBlock as Box<super_block> [
  Text<string> s_id
  Text<string> fstype: ${@this.s_type->name}
  Text<u64:x> s_magic
  Text s_count
  Link s_bdev -> Bdev(${@this.s_bdev})
]
sbs = List(${&super_blocks}).forEach |n| { yield SuperBlock<super_block.s_list>(@n) }
plot @sbs
)";

const char* kFig15_1 = R"(// Fig 15-1: the radix tree managing the page cache
define Page as Box<page> [
  Text index
  Text<u64:x> flags
]
define RadixNode as Box<radix_tree_node> [
  Text shift, count
  Container slots: @children
] where {
  is_leaf = ${@this.shift == 0}
  children = Array(${@this.slots}).forEach |s| {
    yield switch ${@s == NULL} {
      case ${1}: NULL
      otherwise: switch @is_leaf {
        case ${1}: Page(@s)
        otherwise: RadixNode(@s)
      }
    }
  }
}
define AddressSpace as Box<address_space> [
  Text nrpages
  Link page_tree -> RadixNode(${@this.i_pages.rnode})
]
plot AddressSpace(${&target_file.f_inode->i_data})
)";

const char* kFig16_2 = R"(// Fig 16-2: file memory mapping
define Page as Box<page> [
  Text index
  Text<u64:x> flags
]
define AddressSpace as Box<address_space> [
  Text nrpages
  Container pages: Array.selectFrom(${&@this.i_pages}, Page)
]
define File as Box<file> [
  Text<string> path: ${@this.f_dentry->d_name}
  Text<bool> has_mapping: ${@this.f_mapping != NULL && @this.f_mapping->nrpages != 0}
  Link mapping -> AddressSpace(${@this.f_mapping})
]
define FdTable as Box<files_struct> [
  Container files: Array(${@this.fdtab.fd}, ${@this.fdtab.max_fds}).forEach |f| {
    yield File(@f)
  }
]
plot FdTable(${target_task.files})
)";

const char* kFig17_1 = R"(// Fig 17-1: reverse map of anonymous pages
define VMArea as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
]
define Avc as Box<anon_vma_chain> [
  Link vma -> VMArea(${@this.vma})
]
define AnonVma as Box<anon_vma> [
  Text refcount: ${@this.refcount.counter}
  Text num_active_vmas
  Container chains: RBTree(${&@this.rb_root}).forEach |n| {
    yield Avc<anon_vma_chain.rb>(@n)
  }
]
avs = MapleTree(${&target_task.mm->mm_mt}).forEach |entry| {
  av = ${((vm_area_struct*)@entry)->anon_vma}
  yield switch ${@av == NULL} {
    case ${1}: NULL
    otherwise: AnonVma(@av)
  }
}
plot @avs
)";

const char* kFig17_6 = R"(// Fig 17-6: swap area descriptors
define FileRef as Box<file> [ Text<string> path: ${@this.f_dentry->d_name} ]
define Bdev as Box<block_device> [ Text<string> bd_disk_name ]
define SwapInfo as Box<swap_info_struct> [
  Text<flag:swap_flag_bits> flags
  Text prio, pages, inuse_pages, max
  Link swap_file -> FileRef(${@this.swap_file})
  Link bdev -> Bdev(${@this.bdev})
]
sis = Array(${swap_info}).forEach |si| { yield SwapInfo(@si) }
plot @sis
)";

const char* kFig19_1 = R"(// Fig 19-1: IPC semaphore management
define Sem as Box<sem> [ Text semval, sempid ]
define SemArray as Box<sem_array> [
  Text key: ${@this.sem_perm.key}
  Text id: ${@this.sem_perm.id}
  Text sem_nsems
  Container sems: Array(${@this.sems}, ${@this.sem_nsems}).forEach |s| { yield Sem(${&@s}) }
]
sems = Array(${init_ipc_ns.ids[0].entries}).forEach |e| {
  yield switch ${@e == NULL} {
    case ${1}: NULL
    otherwise: SemArray(${(sem_array*)@e})
  }
}
plot @sems
)";

const char* kFig19_2 = R"(// Fig 19-2: IPC message queue management
define Msg as Box<msg_msg> [ Text m_type, m_ts ]
define MsgQueue as Box<msg_queue> [
  Text key: ${@this.q_perm.key}
  Text q_qnum, q_cbytes, q_qbytes
  Container messages: List(${&@this.q_messages}).forEach |n| {
    yield Msg<msg_msg.m_list>(@n)
  }
]
msqs = Array(${init_ipc_ns.ids[1].entries}).forEach |e| {
  yield switch ${@e == NULL} {
    case ${1}: NULL
    otherwise: MsgQueue(${(msg_queue*)@e})
  }
}
plot @msqs
)";

const char* kWorkqueue = R"(// Table 2 #19: a heterogeneous work list (paper Figure 6)
define VmstatWork as Box<vmstat_work_item> [
  Text cpu, nr_updates
  Text<fptr> func: ${@this.dw.work.func}
]
define LruWork as Box<lru_drain_item> [
  Text cpu
  Text<fptr> func: ${@this.work.func}
]
define DrainWork as Box<drain_pages_item> [
  Text cpu, drained
  Text<fptr> func: ${@this.work.func}
]
define GenericWork as Box<work_struct> [ Text<fptr> func ]
define Pool as Box<worker_pool> [
  Text cpu, nr_workers
  Container worklist: List(${&@this.worklist}).forEach |n| {
    yield switch ${((work_struct*)((unsigned long)&@n - 8))->func} {
      case ${vmstat_update}: VmstatWork<vmstat_work_item.dw.work.entry>(@n)
      case ${lru_add_drain_per_cpu}: LruWork<lru_drain_item.work.entry>(@n)
      case ${drain_local_pages_wq}: DrainWork<drain_pages_item.work.entry>(@n)
      otherwise: GenericWork<work_struct.entry>(@n)
    }
  }
]
define Pwq as Box<pool_workqueue> [
  Link pool -> Pool(${@this.pool})
]
define Workqueue as Box<workqueue_struct> [
  Text<string> name
  Text<u64:x> flags
  Container pwqs: List(${&@this.pwqs}).forEach |n| {
    yield Pwq<pool_workqueue.pwqs_node>(@n)
  }
]
plot Workqueue(${&mm_percpu_wq})
)";

const char* kProc2Vfs = R"(// Table 2 #20: from a process to the VFS (flattened path)
define SuperBlockRef as Box<super_block> [
  Text<string> s_id
  Text<string> fstype: ${@this.s_type->name}
]
define InodeRef as Box<inode> [
  Text i_ino
  Link i_sb -> SuperBlockRef(${@this.i_sb})
]
define DentryRef as Box<dentry> [
  Text<string> d_name
  Link d_inode -> InodeRef(${@this.d_inode})
]
define Task as Box<task_struct> [
  Text pid, comm
  Link fd0_dentry -> DentryRef(
      ${@this.files->fdtab.fd[0] != NULL ? @this.files->fdtab.fd[0]->f_dentry : 0})
  Link fd0_sb -> SuperBlockRef(
      ${@this.files->fdtab.fd[0] != NULL ? @this.files->fdtab.fd[0]->f_inode->i_sb : 0})
]
plot Task(${target_task})
)";

const char* kSocketConn = R"(// Table 2 #21: live socket connections (added figure)
define Sock as Box<sock> [
  Text skc_family
  Text rxq: ${@this.sk_receive_queue.qlen}
  Text txq: ${@this.sk_write_queue.qlen}
  Link peer -> Sock(${@this.sk_peer})
]
define Socket as Box<socket> [
  Text state, type
  Text rx_qlen: ${@this.sk->sk_receive_queue.qlen}
  Text tx_qlen: ${@this.sk->sk_write_queue.qlen}
  Link sk -> Sock(${@this.sk})
]
define TaskSockets as Box<task_struct> [
  Text pid, comm
  Container sockets: @socks
] where {
  socks = switch ${@this.files == NULL} {
    case ${1}: NULL
    otherwise: Array(${@this.files->fdtab.fd}, ${@this.files->fdtab.max_fds}).forEach |f| {
      yield switch ${@f != NULL && (@f->f_inode->i_mode & 0170000) == S_IFSOCK} {
        case ${1}: Socket(${(socket*)@f->private_data})
        otherwise: NULL
      }
    }
  }
}
tasks = List(${&init_task.tasks}).forEach |n| {
  yield TaskSockets<task_struct.tasks>(@n)
}
plot @tasks
)";

std::vector<FigureDef> BuildFigures() {
  return {
      {1, "fig3_4", "Fig 3-4", "process parenthood tree", "O", kFig3_4},
      {2, "fig3_6", "Fig 3-6", "PID hash tables", "d", kFig3_6},
      {3, "fig4_5", "Fig 4-5", "IRQ descriptors", "o", kFig4_5},
      {4, "fig6_1", "Fig 6-1", "dynamic timers", "D", kFig6_1},
      {5, "fig7_1", "Fig 7-1", "runqueue of CFS scheduler", "D", kFig7_1},
      {6, "fig8_2", "Fig 8-2", "buddy system and pages", "d", kFig8_2},
      {7, "fig8_4", "Fig 8-4", "kmem cache and slab allocator", "D", kFig8_4},
      {8, "fig9_2", "Fig 9-2", "process address space", "D", kFig9_2},
      {9, "fig11_1", "Fig 11-1", "components for signal handling", "O", kFig11_1},
      {10, "fig12_3", "Fig 12-3", "the fd array", "o", kFig12_3},
      {11, "fig13_3", "Fig 13-3", "device driver and kobject", "d", kFig13_3},
      {12, "fig14_3", "Fig 14-3", "block device descriptors", "d", kFig14_3},
      {13, "fig15_1", "Fig 15-1", "the radix tree managing page cache", "D", kFig15_1},
      {14, "fig16_2", "Fig 16-2", "file memory mapping", "d", kFig16_2},
      {15, "fig17_1", "Fig 17-1", "reverse map of anonymous pages", "O", kFig17_1},
      {16, "fig17_6", "Fig 17-6", "swap area descriptors", "O", kFig17_6},
      {17, "fig19_1", "Fig 19-1", "IPC semaphore management", "D", kFig19_1},
      {18, "fig19_2", "Fig 19-2", "IPC message queue management", "D", kFig19_2},
      {19, "workqueue", "-", "work queue", "D", kWorkqueue},
      {20, "proc2vfs", "-", "from process to VFS", "O", kProc2Vfs},
      {21, "socketconn", "-", "socket connection", "d", kSocketConn},
  };
}

std::vector<ObjectiveDef> BuildObjectives() {
  return {
      {"fig3_4",
       "Display view \"show_children\" of all tasks and shrink tasks that have no address "
       "space",
       "display view show_children of all tasks and shrink tasks that have no address space",
       "a = SELECT task_struct FROM *\n"
       "UPDATE a WITH view: show_children\n"
       "b = SELECT task_struct FROM * WHERE mm == NULL\n"
       "UPDATE b WITH collapsed: true\n"},
      {"fig3_6",
       "Shrink all PID hash table entries except for a set of specific pids",
       "shrink all pid hash table entries except for pids 1 and 2",
       "a = SELECT pid FROM * WHERE nr != 1 AND nr != 2\n"
       "UPDATE a WITH collapsed: true\n"},
      {"fig4_5",
       "Shrink irq descriptors whose action is not configured",
       "shrink irq descriptors whose action is not configured",
       "a = SELECT irq_desc FROM * WHERE action == NULL\n"
       "UPDATE a WITH collapsed: true\n"},
      {"fig7_1",
       "Display view \"sched\" of all processes, and display the red-black tree top-down",
       "display view sched of all processes and display the red-black tree top-down",
       "a = SELECT task_struct FROM *\n"
       "UPDATE a WITH view: sched\n"
       "b = SELECT RBTree FROM *\n"
       "UPDATE b WITH direction: vertical\n"},
      {"fig9_2",
       "Display view \"show_mt\" of mm_struct, collapse the slot pointer list, and shrink "
       "all writable vm_area_structs",
       "display view show_mt of mm_struct, collapse the slot pointer lists, and shrink all "
       "writable memory areas",
       "a = SELECT mm_struct FROM *\n"
       "UPDATE a WITH view: show_mt\n"
       "b = SELECT maple_node.slots FROM *\n"
       "UPDATE b WITH collapsed: true\n"
       "c = SELECT vm_area_struct FROM * WHERE is_writable == true\n"
       "UPDATE c WITH collapsed: true\n"},
      {"fig11_1",
       "Shrink all non-configured sigactions",
       "shrink all non-configured sigactions",
       "a = SELECT k_sigaction FROM * WHERE is_configured != true\n"
       "UPDATE a WITH collapsed: true\n"},
      {"fig14_3",
       "Display the superblock list vertically, and collapse superblocks that are not "
       "connected to any block device",
       "display the superblock list vertically, and collapse superblocks that are not "
       "connected to any block device",
       "a = SELECT List FROM *\n"
       "UPDATE a WITH direction: vertical\n"
       "b = SELECT super_block FROM * WHERE s_bdev == NULL\n"
       "UPDATE b WITH collapsed: true\n"},
      {"fig15_1",
       "Shrink the extremely large page list in file mappings",
       "shrink the extremely large page list",
       "a = SELECT page FROM *\n"
       "UPDATE a WITH collapsed: true\n"},
      {"fig16_2",
       "Shrink all files that have no memory mapping",
       "shrink all files that have no memory mapping",
       "a = SELECT file FROM * WHERE has_mapping != true\n"
       "UPDATE a WITH collapsed: true\n"},
      {"socketconn",
       "Shrink sockets whose write/receive buffer are both empty",
       "shrink sockets whose write and receive buffers are both empty",
       "a = SELECT socket FROM * WHERE tx_qlen == 0 AND rx_qlen == 0\n"
       "UPDATE a WITH collapsed: true\n"},
  };
}

}  // namespace

const std::vector<FigureDef>& AllFigures() {
  static const std::vector<FigureDef>* figures = new std::vector<FigureDef>(BuildFigures());
  return *figures;
}

const FigureDef* FindFigure(const std::string& id) {
  for (const FigureDef& figure : AllFigures()) {
    if (figure.id == id) {
      return &figure;
    }
  }
  return nullptr;
}

const std::vector<ObjectiveDef>& AllObjectives() {
  static const std::vector<ObjectiveDef>* objectives =
      new std::vector<ObjectiveDef>(BuildObjectives());
  return *objectives;
}

void RegisterFigureSymbols(dbg::KernelDebugger* debugger, vkern::Workload* workload) {
  vkern::Kernel* kernel = debugger->kernel();
  // target_task: a workload process that owns at least one socket fd (the
  // socketconn figure needs one); fall back to process 0.
  vkern::task_struct* target = workload->process(0);
  for (vkern::task_struct* task : workload->user_tasks()) {
    vkern::files_struct* files = task->files;
    if (files == nullptr) {
      continue;
    }
    bool has_socket = false;
    for (uint32_t fd = 0; fd < files->fdt->max_fds; ++fd) {
      vkern::file* f = kernel->fs().FdGet(files, static_cast<int>(fd));
      if (f != nullptr && (f->f_inode->i_mode & 0170000u) == vkern::kSIfSock) {
        has_socket = true;
        break;
      }
    }
    if (has_socket) {
      target = task->group_leader;
      break;
    }
  }
  debugger->symbols().AddGlobal("target_task", debugger->types().FindByName("task_struct"),
                                reinterpret_cast<uint64_t>(target));

  // target_file: the file with the most cached pages.
  vkern::file* best = nullptr;
  uint64_t best_pages = 0;
  for (vkern::task_struct* task : workload->user_tasks()) {
    vkern::files_struct* files = task->files;
    if (files == nullptr) {
      continue;
    }
    for (uint32_t fd = 0; fd < files->fdt->max_fds; ++fd) {
      vkern::file* f = kernel->fs().FdGet(files, static_cast<int>(fd));
      if (f != nullptr && f->f_mapping != nullptr && f->f_mapping->nrpages > best_pages) {
        best = f;
        best_pages = f->f_mapping->nrpages;
      }
    }
  }
  if (best == nullptr) {
    // Boot-time swap file always exists.
    best = kernel->swap().info(0)->swap_file;
  }
  debugger->symbols().AddGlobal("target_file", debugger->types().FindByName("file"),
                                reinterpret_cast<uint64_t>(best));
}

}  // namespace vision
