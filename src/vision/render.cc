#include "src/vision/render.h"

#include "src/support/str.h"

namespace vision {

using viewcl::ContainerItem;
using viewcl::kNoBox;
using viewcl::LinkItem;
using viewcl::VBox;
using viewcl::ViewGraph;
using viewcl::ViewInstance;

std::set<uint64_t> VisibleBoxes(const ViewGraph& graph) {
  std::set<uint64_t> visible;
  std::vector<uint64_t> stack;
  for (uint64_t root : graph.roots()) {
    stack.push_back(root);
  }
  while (!stack.empty()) {
    uint64_t id = stack.back();
    stack.pop_back();
    const VBox* box = graph.box(id);
    if (box == nullptr || box->AttrBool("trimmed") || !visible.insert(id).second) {
      continue;
    }
    if (box->AttrBool("collapsed")) {
      continue;  // a collapsed stub hides its descendants until expanded
    }
    // Only the *active* view's edges count for visibility.
    const ViewInstance* view = box->ActiveView();
    if (view == nullptr) {
      continue;
    }
    for (const LinkItem& link : view->links) {
      if (link.target != kNoBox) {
        stack.push_back(link.target);
      }
    }
    for (const ContainerItem& container : view->containers) {
      for (uint64_t member : container.members) {
        stack.push_back(member);
      }
    }
  }
  return visible;
}

namespace {

std::string BoxHeader(const VBox& box, const RenderOptions& options) {
  std::string header = box.is_virtual() ? box.decl_name() : box.kernel_type();
  if (options.show_addresses && !box.is_virtual()) {
    header += vl::StrFormat(" @0x%llx", static_cast<unsigned long long>(box.addr()));
  }
  return header;
}

class AsciiWriter {
 public:
  AsciiWriter(const ViewGraph& graph, const RenderOptions& options)
      : graph_(graph), options_(options), visible_(VisibleBoxes(graph)) {}

  std::string Run() {
    for (size_t i = 0; i < graph_.roots().size(); ++i) {
      out_ += vl::StrFormat("== plot %zu ==\n", i + 1);
      WriteBox(graph_.roots()[i], 0);
    }
    return out_;
  }

 private:
  void Indent(int depth) { out_.append(static_cast<size_t>(depth) * 2, ' '); }

  void WriteBox(uint64_t id, int depth) {
    const VBox* box = graph_.box(id);
    if (box == nullptr) {
      return;
    }
    if (box->AttrBool("trimmed")) {
      return;
    }
    if (box->AttrBool("collapsed")) {
      Indent(depth);
      out_ += vl::StrFormat("[+] %s (collapsed)\n", BoxHeader(*box, options_).c_str());
      return;
    }
    if (!emitted_.insert(id).second) {
      Indent(depth);
      out_ += vl::StrFormat("(see box #%llu %s)\n", static_cast<unsigned long long>(id),
                            BoxHeader(*box, options_).c_str());
      return;
    }
    Indent(depth);
    out_ += vl::StrFormat("+- #%llu %s", static_cast<unsigned long long>(id),
                          BoxHeader(*box, options_).c_str());
    const ViewInstance* view = box->ActiveView();
    if (view != nullptr && view->name != "default") {
      out_ += " [:" + view->name + "]";
    }
    out_ += "\n";
    if (view == nullptr) {
      return;
    }
    for (const viewcl::TextItem& text : view->texts) {
      Indent(depth + 1);
      out_ += "| " + text.name + " = " + text.display + "\n";
    }
    for (const LinkItem& link : view->links) {
      Indent(depth + 1);
      if (link.target == kNoBox) {
        out_ += "* " + link.name + " -> (null)\n";
      } else {
        out_ += "* " + link.name + " ->\n";
        WriteBox(link.target, depth + 2);
      }
    }
    for (const ContainerItem& container : view->containers) {
      Indent(depth + 1);
      bool vertical = false;
      auto dir = box->attrs().find("direction");
      if (dir != box->attrs().end() && dir->second == "vertical") {
        vertical = true;
      }
      out_ += vl::StrFormat("# %s (%zu %s)\n", container.name.c_str(),
                            container.members.size(), vertical ? "vertical" : "horizontal");
      int shown = 0;
      int hidden = 0;
      for (uint64_t member : container.members) {
        const VBox* member_box = graph_.box(member);
        if (member_box != nullptr && member_box->AttrBool("trimmed")) {
          continue;
        }
        if (shown >= options_.max_container_preview) {
          ++hidden;
          continue;
        }
        WriteBox(member, depth + 2);
        ++shown;
      }
      if (hidden > 0) {
        Indent(depth + 2);
        out_ += vl::StrFormat("... (+%d more)\n", hidden);
      }
    }
  }

  const ViewGraph& graph_;
  const RenderOptions& options_;
  std::set<uint64_t> visible_;
  std::set<uint64_t> emitted_;
  std::string out_;
};

std::string DotEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '<' || c == '>' || c == '|') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string AsciiRenderer::Render(const ViewGraph& graph) const {
  AsciiWriter writer(graph, options_);
  return writer.Run();
}

std::string DotRenderer::Render(const ViewGraph& graph) const {
  std::set<uint64_t> visible = VisibleBoxes(graph);
  std::string out = "digraph kernel_state {\n  rankdir=LR;\n  node [shape=record];\n";
  for (uint64_t id : visible) {
    const VBox* box = graph.box(id);
    const ViewInstance* view = box->ActiveView();
    std::string label = DotEscape(BoxHeader(*box, options_));
    if (box->AttrBool("collapsed")) {
      out += vl::StrFormat("  b%llu [label=\"[+] %s\", style=dashed];\n",
                           static_cast<unsigned long long>(id), label.c_str());
      continue;
    }
    std::string record = label;
    if (view != nullptr) {
      for (const viewcl::TextItem& text : view->texts) {
        record += "|" + DotEscape(text.name) + ": " + DotEscape(text.display);
      }
    }
    out += vl::StrFormat("  b%llu [label=\"{%s}\"];\n", static_cast<unsigned long long>(id),
                         record.c_str());
    if (view == nullptr) {
      continue;
    }
    for (const LinkItem& link : view->links) {
      if (link.target != kNoBox && visible.count(link.target) != 0) {
        out += vl::StrFormat("  b%llu -> b%llu [label=\"%s\"];\n",
                             static_cast<unsigned long long>(id),
                             static_cast<unsigned long long>(link.target),
                             DotEscape(link.name).c_str());
      }
    }
    for (const ContainerItem& container : view->containers) {
      for (uint64_t member : container.members) {
        if (visible.count(member) != 0) {
          out += vl::StrFormat("  b%llu -> b%llu [style=dotted, label=\"%s\"];\n",
                               static_cast<unsigned long long>(id),
                               static_cast<unsigned long long>(member),
                               DotEscape(container.name).c_str());
        }
      }
    }
  }
  out += "}\n";
  return out;
}

vl::Json JsonRenderer::ToJson(const ViewGraph& graph) const {
  vl::Json root = vl::Json::Object();
  vl::Json roots = vl::Json::Array();
  for (uint64_t id : graph.roots()) {
    roots.Append(vl::Json::Int(static_cast<int64_t>(id)));
  }
  root["roots"] = std::move(roots);

  vl::Json boxes = vl::Json::Array();
  graph.ForEachBox([&boxes](const VBox& box) {
    vl::Json jbox = vl::Json::Object();
    jbox["id"] = vl::Json::Int(static_cast<int64_t>(box.id()));
    jbox["decl"] = vl::Json::Str(box.decl_name());
    jbox["type"] = vl::Json::Str(box.kernel_type());
    jbox["addr"] = vl::Json::Str(vl::FormatUnsigned(box.addr(), 16));
    jbox["virtual"] = vl::Json::Bool(box.is_virtual());

    vl::Json views = vl::Json::Array();
    for (const ViewInstance& view : box.views()) {
      vl::Json jview = vl::Json::Object();
      jview["name"] = vl::Json::Str(view.name);
      vl::Json texts = vl::Json::Array();
      for (const viewcl::TextItem& text : view.texts) {
        vl::Json jtext = vl::Json::Object();
        jtext["name"] = vl::Json::Str(text.name);
        jtext["text"] = vl::Json::Str(text.display);
        texts.Append(std::move(jtext));
      }
      jview["texts"] = std::move(texts);
      vl::Json links = vl::Json::Array();
      for (const LinkItem& link : view.links) {
        vl::Json jlink = vl::Json::Object();
        jlink["name"] = vl::Json::Str(link.name);
        jlink["target"] =
            link.target == kNoBox ? vl::Json::Null() : vl::Json::Int(static_cast<int64_t>(link.target));
        links.Append(std::move(jlink));
      }
      jview["links"] = std::move(links);
      vl::Json containers = vl::Json::Array();
      for (const ContainerItem& container : view.containers) {
        vl::Json jcontainer = vl::Json::Object();
        jcontainer["name"] = vl::Json::Str(container.name);
        vl::Json members = vl::Json::Array();
        for (uint64_t member : container.members) {
          members.Append(vl::Json::Int(static_cast<int64_t>(member)));
        }
        jcontainer["members"] = std::move(members);
        containers.Append(std::move(jcontainer));
      }
      jview["containers"] = std::move(containers);
      views.Append(std::move(jview));
    }
    jbox["views"] = std::move(views);

    vl::Json attrs = vl::Json::Object();
    for (const auto& [key, value] : box.attrs()) {
      attrs[key] = vl::Json::Str(value);
    }
    jbox["attrs"] = std::move(attrs);
    boxes.Append(std::move(jbox));
  });
  root["boxes"] = std::move(boxes);
  return root;
}

const std::vector<std::string>& RendererBackends() {
  static const std::vector<std::string>* backends =
      new std::vector<std::string>{"ascii", "dot", "json"};
  return *backends;
}

std::unique_ptr<Renderer> MakeRenderer(std::string_view backend,
                                       RenderOptions options) {
  if (backend == "ascii") {
    return std::make_unique<AsciiRenderer>(options);
  }
  if (backend == "dot") {
    return std::make_unique<DotRenderer>(options);
  }
  if (backend == "json") {
    return std::make_unique<JsonRenderer>();
  }
  return nullptr;
}

}  // namespace vision
