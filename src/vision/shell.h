// DEPRECATED forwarding header: DebuggerShell moved to the vserve serving
// layer (src/serve/shell.h) as part of the multi-session redesign. This
// header remains so existing includes keep compiling; it will be removed
// once all callers include src/serve/shell.h directly.
//
// vision::DebuggerShell is an alias for vserve::DebuggerShell (declared in
// src/serve/shell.h).

#ifndef SRC_VISION_SHELL_H_
#define SRC_VISION_SHELL_H_

#include "src/serve/shell.h"  // IWYU pragma: export

#endif  // SRC_VISION_SHELL_H_
