// The v-command shell (paper §4): vplot, vctrl, and vchat as CLI-style
// commands a developer invokes at a breakpoint. This is the programmatic core
// behind the interactive example binary and the shell tests.

#ifndef SRC_VISION_SHELL_H_
#define SRC_VISION_SHELL_H_

#include <memory>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/support/budget.h"
#include "src/support/timeseries.h"
#include "src/viewcl/interp.h"
#include "src/vision/panes.h"
#include "src/vision/vchat.h"

namespace vision {

class DebuggerShell {
 public:
  explicit DebuggerShell(dbg::KernelDebugger* debugger);

  // Executes one command line and returns its textual output. Commands:
  //   vplot <pane> <viewcl program...>      extract a graph into a pane
  //   vctrl split <pane> h|v                split a pane
  //   vctrl apply <pane> <viewql...>        refine a pane with ViewQL
  //   vctrl lint <file|pane> [json]         static-check ViewCL/ViewQL (vlint)
  //   vctrl focus addr <hex>                search all panes for an object
  //   vctrl focus <member> <value>          search by member value (e.g. pid 2)
  //   vctrl view <pane> [ascii|dot|json]    render a pane with a back-end
  //   vctrl layout                          show the pane tree
  //   vctrl save                            dump the session state as JSON
  //   vctrl stats [json]                    merged target/cache/pane cost report
  //   vctrl trace on|off|clear|dump <file>  control the deterministic tracer
  //   vctrl explain <pane> [json]           refresh + per-node cost attribution
  //   vctrl refresh <pane>                  re-extract a pane, report its cost
  //   vctrl watch on|off|clear|<pane> [json]  refresh time-series (sparklines)
  //   vctrl budget set|clear|list|report|on|off  latency budgets + violations
  //   vctrl export prom|folded|chrome [path]  standard exporters
  //   vprof <pane> <viewcl program...>      traced run + self-time breakdown
  //   vchat <pane> <natural language...>    synthesize + apply ViewQL
  //   help
  std::string Execute(const std::string& line);

  PaneManager& panes() { return panes_; }
  viewcl::Interpreter& interp() { return interp_; }
  VchatSynthesizer& vchat() { return vchat_; }
  vl::TimeSeriesRecorder& recorder() { return recorder_; }
  vl::BudgetRegistry& budgets() { return budgets_; }

 private:
  std::string CmdVplot(const std::string& args);
  std::string CmdVctrl(const std::string& args);
  std::string CmdLint(const std::string& args);
  std::string CmdVchat(const std::string& args);
  std::string CmdVprof(const std::string& args);
  std::string CmdStats(const std::string& args);
  // The merged stats object: {"target", "cache", "panes", "tracer", "metrics"}
  // — one place for every stats shape (docs/observability.md#stats-schema).
  vl::Json StatsJson() const;
  std::string CmdTrace(const std::string& args);
  std::string CmdExplain(const std::string& args);
  std::string CmdRefresh(const std::string& args);
  std::string CmdWatch(const std::string& args);
  std::string CmdBudget(const std::string& args);
  std::string CmdExport(const std::string& args);
  // Replots a primary pane's graph through the shell's interpreter.
  PaneManager::ReplotFn MakeReplotFn();

  dbg::KernelDebugger* debugger_;
  viewcl::Interpreter interp_;
  PaneManager panes_;
  VchatSynthesizer vchat_;
  vl::TimeSeriesRecorder recorder_;  // fed by panes_ (attached in the ctor)
  vl::BudgetRegistry budgets_;       // checked by panes_'s refresh watchdog
};

}  // namespace vision

#endif  // SRC_VISION_SHELL_H_
