// Renderers for ViewCL object graphs (the paper's visualizer output stage).
//
// Three back-ends share the same visibility semantics, honouring the ViewQL
// display attributes:
//   * `trimmed`    — the box and everything only reachable through it vanish;
//   * `collapsed`  — the box renders as a click-to-expand stub;
//   * `view`       — selects which of the box's views is shown;
//   * `direction`  — horizontal (default) or vertical container layout.
//
// AsciiRenderer produces terminal box diagrams, DotRenderer produces Graphviz
// input, and JsonRenderer produces the wire format the paper's TypeScript
// front-end would receive over HTTP. All three implement the abstract
// `Renderer` interface; callers that select a back-end at runtime (the shell's
// `vctrl view <pane> <backend>`, pane rendering) go through `MakeRenderer`.

#ifndef SRC_VISION_RENDER_H_
#define SRC_VISION_RENDER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"
#include "src/viewcl/graph.h"

namespace vision {

// The boxes that should be displayed: reachable from the roots without
// passing through trimmed boxes (trimmed roots are dropped entirely).
std::set<uint64_t> VisibleBoxes(const viewcl::ViewGraph& graph);

struct RenderOptions {
  bool show_addresses = false;   // append @0x... to box headers
  bool show_attributes = false;  // show the ViewQL attribute map
  int max_container_preview = 12;  // elements shown before "... (+N more)"
};

// A rendering back-end: turns a ViewGraph into one output document.
class Renderer {
 public:
  virtual ~Renderer() = default;
  virtual std::string Render(const viewcl::ViewGraph& graph) const = 0;
  // The factory name this back-end answers to ("ascii", "dot", "json").
  virtual const char* name() const = 0;
};

class AsciiRenderer : public Renderer {
 public:
  explicit AsciiRenderer(RenderOptions options = RenderOptions{}) : options_(options) {}
  std::string Render(const viewcl::ViewGraph& graph) const override;
  const char* name() const override { return "ascii"; }

 private:
  RenderOptions options_;
};

class DotRenderer : public Renderer {
 public:
  explicit DotRenderer(RenderOptions options = RenderOptions{}) : options_(options) {}
  std::string Render(const viewcl::ViewGraph& graph) const override;
  const char* name() const override { return "dot"; }

 private:
  RenderOptions options_;
};

class JsonRenderer : public Renderer {
 public:
  // Serializes the full graph (all boxes, views, members, attributes, roots).
  vl::Json ToJson(const viewcl::ViewGraph& graph) const;
  std::string Render(const viewcl::ViewGraph& graph, int indent) const {
    return ToJson(graph).Dump(indent);
  }
  std::string Render(const viewcl::ViewGraph& graph) const override {
    return Render(graph, 2);
  }
  const char* name() const override { return "json"; }
};

// Back-end names MakeRenderer accepts, in display order.
const std::vector<std::string>& RendererBackends();

// Creates the named back-end ("ascii", "dot", "json"); nullptr if unknown.
std::unique_ptr<Renderer> MakeRenderer(std::string_view backend,
                                       RenderOptions options = RenderOptions{});

}  // namespace vision

#endif  // SRC_VISION_RENDER_H_
