// Renderers for ViewCL object graphs (the paper's visualizer output stage).
//
// Three back-ends share the same visibility semantics, honouring the ViewQL
// display attributes:
//   * `trimmed`    — the box and everything only reachable through it vanish;
//   * `collapsed`  — the box renders as a click-to-expand stub;
//   * `view`       — selects which of the box's views is shown;
//   * `direction`  — horizontal (default) or vertical container layout.
//
// AsciiRenderer produces terminal box diagrams, DotRenderer produces Graphviz
// input, and JsonRenderer produces the wire format the paper's TypeScript
// front-end would receive over HTTP.

#ifndef SRC_VISION_RENDER_H_
#define SRC_VISION_RENDER_H_

#include <set>
#include <string>
#include <vector>

#include "src/support/json.h"
#include "src/viewcl/graph.h"

namespace vision {

// The boxes that should be displayed: reachable from the roots without
// passing through trimmed boxes (trimmed roots are dropped entirely).
std::set<uint64_t> VisibleBoxes(const viewcl::ViewGraph& graph);

struct RenderOptions {
  bool show_addresses = false;   // append @0x... to box headers
  bool show_attributes = false;  // show the ViewQL attribute map
  int max_container_preview = 12;  // elements shown before "... (+N more)"
};

class AsciiRenderer {
 public:
  explicit AsciiRenderer(RenderOptions options = RenderOptions{}) : options_(options) {}
  std::string Render(const viewcl::ViewGraph& graph) const;

 private:
  RenderOptions options_;
};

class DotRenderer {
 public:
  explicit DotRenderer(RenderOptions options = RenderOptions{}) : options_(options) {}
  std::string Render(const viewcl::ViewGraph& graph) const;

 private:
  RenderOptions options_;
};

class JsonRenderer {
 public:
  // Serializes the full graph (all boxes, views, members, attributes, roots).
  vl::Json ToJson(const viewcl::ViewGraph& graph) const;
  std::string Render(const viewcl::ViewGraph& graph, int indent = 2) const {
    return ToJson(graph).Dump(indent);
  }
};

}  // namespace vision

#endif  // SRC_VISION_RENDER_H_
