// vchat: natural language -> ViewQL synthesis (paper §2.4, §4.2, §5.2).
//
// The paper sends the request plus in-context examples to DeepSeek-V2; since
// this repository must run offline and deterministically, vchat is a
// rule-based synthesizer over the same request family: an action verb
// (display/collapse/trim/orient), a type phrase resolved through a kernel
// lexicon, an optional view name, and an optional condition. DESIGN.md
// documents this substitution; the evaluation criterion (§5.2's "all 10
// objectives synthesize to <10-line ViewQL programs") is preserved.

#ifndef SRC_VISION_VCHAT_H_
#define SRC_VISION_VCHAT_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace vision {

class VchatSynthesizer {
 public:
  VchatSynthesizer();  // installs the default kernel lexicon

  // Adds a noun-phrase -> box/kernel type mapping ("memory area" ->
  // "vm_area_struct"). Longest phrase wins.
  void AddTypePhrase(std::string phrase, std::string type_name);
  // Adds a condition template: when `phrase` appears in a clause, the given
  // WHERE fragment is attached ("have no address space" -> "mm == NULL").
  void AddConditionPhrase(std::string phrase, std::string condition);

  // Synthesizes a ViewQL program from the request; error if no rule matches.
  vl::StatusOr<std::string> Synthesize(std::string_view request) const;

 private:
  struct ClausePlan {
    std::string type_name;       // SELECT target
    std::string item_path;       // e.g. "maple_node.slots"
    std::string condition;       // WHERE text (may be empty)
    std::string attr;            // view/collapsed/trimmed/direction
    std::string value;
    bool valid = false;
  };

  ClausePlan PlanClause(const std::string& clause) const;
  std::string FindType(const std::string& clause) const;
  std::string FindCondition(const std::string& clause) const;

  std::vector<std::pair<std::string, std::string>> type_phrases_;  // sorted longest-first
  std::vector<std::pair<std::string, std::string>> cond_phrases_;
};

}  // namespace vision

#endif  // SRC_VISION_VCHAT_H_
