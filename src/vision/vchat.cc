#include "src/vision/vchat.h"
#include <cctype>

#include <algorithm>
#include <regex>

#include "src/support/str.h"

namespace vision {

namespace {

const char* kActionVerbs[] = {"display", "show",   "shrink", "collapse", "hide",
                              "trim",    "remove", "make",   "find",     "mark"};

bool StartsWithVerb(std::string_view text) {
  for (const char* verb : kActionVerbs) {
    std::string_view v(verb);
    if (text.substr(0, v.size()) == v) {
      return true;
    }
  }
  return false;
}

// Splits the request into action clauses: separators (", " / " and " / "; " /
// ". " / " then ") only count when followed by an action verb, so conditions
// like "write and receive buffers" survive intact.
std::vector<std::string> SplitClauses(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  size_t pos = 0;
  auto flush = [&](size_t end, size_t next) {
    std::string_view piece = vl::StrTrim(std::string_view(text).substr(start, end - start));
    if (!piece.empty()) {
      out.emplace_back(piece);
    }
    start = next;
  };
  while (pos < text.size()) {
    for (std::string_view sep : {std::string_view(", and "), std::string_view(" and "),
                                 std::string_view(", "), std::string_view("; "),
                                 std::string_view(". "), std::string_view(" then ")}) {
      if (text.compare(pos, sep.size(), sep) == 0) {
        std::string_view rest = std::string_view(text).substr(pos + sep.size());
        rest = vl::StrTrim(rest);
        if (StartsWithVerb(rest)) {
          flush(pos, pos + sep.size());
          pos += sep.size();
          goto advanced;
        }
      }
    }
    ++pos;
  advanced:;
  }
  flush(text.size(), text.size());
  return out;
}

}  // namespace

VchatSynthesizer::VchatSynthesizer() {
  // --- kernel noun-phrase lexicon ---
  AddTypePhrase("user thread", "task_struct");
  AddTypePhrase("user threads", "task_struct");
  AddTypePhrase("kernel thread", "task_struct");
  AddTypePhrase("task_struct", "task_struct");
  AddTypePhrase("tasks", "task_struct");
  AddTypePhrase("task", "task_struct");
  AddTypePhrase("processes", "task_struct");
  AddTypePhrase("process", "task_struct");
  AddTypePhrase("threads", "task_struct");
  AddTypePhrase("memory areas", "vm_area_struct");
  AddTypePhrase("memory area", "vm_area_struct");
  AddTypePhrase("memory regions", "vm_area_struct");
  AddTypePhrase("vm_area_struct", "vm_area_struct");
  AddTypePhrase("vmas", "vm_area_struct");
  AddTypePhrase("vma", "vm_area_struct");
  AddTypePhrase("superblocks", "super_block");
  AddTypePhrase("superblock", "super_block");
  AddTypePhrase("super_block", "super_block");
  AddTypePhrase("irq descriptors", "irq_desc");
  AddTypePhrase("irq descriptor", "irq_desc");
  AddTypePhrase("sigactions", "k_sigaction");
  AddTypePhrase("sigaction", "k_sigaction");
  AddTypePhrase("pid hash table entries", "pid");
  AddTypePhrase("pid hash entries", "pid");
  AddTypePhrase("pid entries", "pid");
  AddTypePhrase("sockets", "socket");
  AddTypePhrase("socket", "socket");
  AddTypePhrase("files", "file");
  AddTypePhrase("file", "file");
  AddTypePhrase("pages", "page");
  AddTypePhrase("page", "page");
  AddTypePhrase("maple nodes", "maple_node");
  AddTypePhrase("maple node", "maple_node");
  AddTypePhrase("mm_struct", "mm_struct");
  AddTypePhrase("timers", "timer_list");
  AddTypePhrase("work items", "work_struct");
  // Item/container phrases.
  AddTypePhrase("slot pointer lists", "maple_node.slots");
  AddTypePhrase("slot pointer list", "maple_node.slots");
  AddTypePhrase("page list", "page");
  AddTypePhrase("superblock list", "List");
  AddTypePhrase("the list", "List");
  AddTypePhrase("red-black tree", "RBTree");
  AddTypePhrase("rbtree", "RBTree");

  // --- condition templates ---
  AddConditionPhrase("have no address space", "mm == NULL");
  AddConditionPhrase("has no address space", "mm == NULL");
  AddConditionPhrase("without an address space", "mm == NULL");
  AddConditionPhrase("have an address space", "mm != NULL");
  AddConditionPhrase("have non-null mm members", "mm != NULL");
  AddConditionPhrase("non-null mm", "mm != NULL");
  AddConditionPhrase("action is not configured", "action == NULL");
  AddConditionPhrase("whose action is not configured", "action == NULL");
  AddConditionPhrase("non-configured", "is_configured != true");
  AddConditionPhrase("not configured", "is_configured != true");
  AddConditionPhrase("not connected to any block device", "s_bdev == NULL");
  AddConditionPhrase("no block device", "s_bdev == NULL");
  AddConditionPhrase("has no memory mapping", "has_mapping != true");
  AddConditionPhrase("have no memory mapping", "has_mapping != true");
  AddConditionPhrase("not writable", "is_writable != true");
  AddConditionPhrase("read-only", "is_writable != true");
  AddConditionPhrase("writable", "is_writable == true");
  AddConditionPhrase("write/receive buffer are both empty",
                     "tx_qlen == 0 AND rx_qlen == 0");
  AddConditionPhrase("write and receive buffers are both empty",
                     "tx_qlen == 0 AND rx_qlen == 0");
  AddConditionPhrase("is a zombie", "exit_state != 0");
  AddConditionPhrase("kernel threads", "mm == NULL");
}

void VchatSynthesizer::AddTypePhrase(std::string phrase, std::string type_name) {
  type_phrases_.emplace_back(std::move(phrase), std::move(type_name));
  std::stable_sort(type_phrases_.begin(), type_phrases_.end(),
                   [](const auto& a, const auto& b) { return a.first.size() > b.first.size(); });
}

void VchatSynthesizer::AddConditionPhrase(std::string phrase, std::string condition) {
  cond_phrases_.emplace_back(std::move(phrase), std::move(condition));
  std::stable_sort(cond_phrases_.begin(), cond_phrases_.end(),
                   [](const auto& a, const auto& b) { return a.first.size() > b.first.size(); });
}

std::string VchatSynthesizer::FindType(const std::string& clause) const {
  for (const auto& [phrase, type_name] : type_phrases_) {
    if (clause.find(phrase) != std::string::npos) {
      return type_name;
    }
  }
  return "";
}

std::string VchatSynthesizer::FindCondition(const std::string& clause) const {
  for (const auto& [phrase, condition] : cond_phrases_) {
    if (clause.find(phrase) != std::string::npos) {
      return condition;
    }
  }
  // "whose address is not 0x..." -> alias comparison (handled by caller via
  // the __alias marker).
  static const std::regex kAddrNot("address is not (0x[0-9a-f]+)");
  std::smatch match;
  if (std::regex_search(clause, match, kAddrNot)) {
    return "__alias != " + match[1].str();
  }
  static const std::regex kAddrIs("address is (0x[0-9a-f]+)");
  if (std::regex_search(clause, match, kAddrIs)) {
    return "__alias == " + match[1].str();
  }
  // pid lists: "except ... pids 1, 2" / "pid 7".
  static const std::regex kPids("pids? ([0-9][0-9, and]*)");
  if (std::regex_search(clause, match, kPids)) {
    std::vector<std::string> nums;
    std::string list = match[1].str();
    std::string current;
    for (char c : list + " ") {
      if (std::isdigit(static_cast<unsigned char>(c))) {
        current += c;
      } else if (!current.empty()) {
        nums.push_back(current);
        current.clear();
      }
    }
    bool negated = clause.find("except") != std::string::npos ||
                   clause.find("is not") != std::string::npos ||
                   clause.find("other than") != std::string::npos;
    std::string cond;
    for (size_t i = 0; i < nums.size(); ++i) {
      if (i != 0) {
        cond += negated ? " AND " : " OR ";
      }
      cond += std::string("pid ") + (negated ? "!=" : "==") + " " + nums[i];
    }
    return cond;
  }
  return "";
}

VchatSynthesizer::ClausePlan VchatSynthesizer::PlanClause(const std::string& clause) const {
  ClausePlan plan;
  // Action.
  bool wants_view = false;
  static const std::regex kViewName("view \"?([a-z_][a-z_0-9]*)\"?");
  static const std::regex kTheView("the \"?([a-z_][a-z_0-9]*)\"? view");
  std::smatch match;
  if (std::regex_search(clause, match, kViewName) ||
      std::regex_search(clause, match, kTheView)) {
    wants_view = true;
    plan.attr = "view";
    plan.value = match[1].str();
  }
  bool vertical = clause.find("vertical") != std::string::npos ||
                  clause.find("top-down") != std::string::npos ||
                  clause.find("top down") != std::string::npos;
  if (!wants_view && vertical) {
    plan.attr = "direction";
    plan.value = "vertical";
  }
  if (plan.attr.empty()) {
    if (clause.find("shrink") != std::string::npos ||
        clause.find("collapse") != std::string::npos) {
      plan.attr = "collapsed";
      plan.value = "true";
    } else if (clause.find("trim") != std::string::npos ||
               clause.find("hide") != std::string::npos ||
               clause.find("remove") != std::string::npos ||
               clause.find("invisible") != std::string::npos) {
      plan.attr = "trimmed";
      plan.value = "true";
    }
  }
  bool select_only = false;
  if (plan.attr.empty()) {
    // "find ..." / "select ..." clauses perform a pure selection that a later
    // "collapse them" style clause refers back to.
    if (clause.find("find") != std::string::npos ||
        clause.find("select") != std::string::npos) {
      select_only = true;
    } else {
      return plan;  // no recognizable action
    }
  }
  (void)select_only;
  // Target type (may be empty: "collapse them").
  std::string found = FindType(clause);
  if (found.find('.') != std::string::npos) {
    plan.item_path = found;
  } else {
    plan.type_name = found;
  }
  plan.condition = FindCondition(clause);
  if (plan.type_name == "pid") {
    // `struct pid` calls its number `nr`.
    plan.condition = vl::StrReplaceAll(plan.condition, "pid ", "nr ");
  }
  plan.valid = true;
  return plan;
}

vl::StatusOr<std::string> VchatSynthesizer::Synthesize(std::string_view request) const {
  std::string text = vl::StrLower(request);
  if (text.find('<') != std::string::npos) {
    return vl::InvalidArgumentError(
        "the request contains an unfilled placeholder (<...>); substitute a real value");
  }
  std::vector<std::string> clauses = SplitClauses(text);
  std::string program;
  std::string previous_set;
  char next_name = 'a';
  for (const std::string& clause : clauses) {
    ClausePlan plan = PlanClause(clause);
    if (!plan.valid) {
      continue;
    }
    bool select_only = plan.attr.empty();
    bool anaphora = plan.type_name.empty() && plan.item_path.empty() &&
                    (clause.find("them") != std::string::npos ||
                     clause.find("these") != std::string::npos ||
                     clause.find("those") != std::string::npos);
    std::string set_name;
    if (anaphora && !previous_set.empty()) {
      set_name = previous_set;  // "collapse them" reuses the last selection
    } else {
      set_name = std::string(1, next_name++);
      std::string selector = !plan.item_path.empty()
                                 ? plan.item_path
                                 : (plan.type_name.empty() ? "*" : plan.type_name);
      program += set_name + " = SELECT " + selector + " FROM *";
      if (!plan.condition.empty()) {
        if (plan.condition.find("__alias") != std::string::npos) {
          program += " AS obj";
          program += " WHERE " + vl::StrReplaceAll(plan.condition, "__alias", "obj");
        } else {
          program += " WHERE " + plan.condition;
        }
      }
      program += "\n";
    }
    if (!select_only) {
      program += "UPDATE " + set_name + " WITH " + plan.attr + ": " + plan.value + "\n";
    }
    previous_set = set_name;
  }
  if (program.empty()) {
    return vl::NotFoundError("no actionable request recognized: '" + text + "'");
  }
  return program;
}

}  // namespace vision
