#include "src/vision/panes.h"

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace vision {

PaneManager::PaneManager(dbg::KernelDebugger* debugger) : debugger_(debugger) {
  Pane pane;
  pane.id = next_pane_id_++;
  panes_.emplace(pane.id, std::move(pane));
  pane_order_.push_back(1);
  layout_ = std::make_unique<LayoutNode>();
  layout_->leaf = true;
  layout_->pane_id = 1;
}

PaneManager::Pane* PaneManager::FindPane(int pane_id) {
  auto it = panes_.find(pane_id);
  return it != panes_.end() ? &it->second : nullptr;
}

const PaneManager::Pane* PaneManager::FindPane(int pane_id) const {
  auto it = panes_.find(pane_id);
  return it != panes_.end() ? &it->second : nullptr;
}

PaneManager::LayoutNode* PaneManager::FindLeaf(LayoutNode* node, int pane_id) {
  if (node == nullptr) {
    return nullptr;
  }
  if (node->leaf) {
    return node->pane_id == pane_id ? node : nullptr;
  }
  LayoutNode* found = FindLeaf(node->first.get(), pane_id);
  return found != nullptr ? found : FindLeaf(node->second.get(), pane_id);
}

vl::StatusOr<int> PaneManager::Split(int pane_id, char direction) {
  if (direction != 'h' && direction != 'v') {
    return vl::InvalidArgumentError("split direction must be 'h' or 'v'");
  }
  LayoutNode* leaf = FindLeaf(layout_.get(), pane_id);
  if (leaf == nullptr) {
    return vl::NotFoundError(vl::StrFormat("no pane %d in the layout", pane_id));
  }
  Pane pane;
  pane.id = next_pane_id_++;
  int new_id = pane.id;
  panes_.emplace(new_id, std::move(pane));
  pane_order_.push_back(new_id);

  auto first = std::make_unique<LayoutNode>();
  first->leaf = true;
  first->pane_id = pane_id;
  auto second = std::make_unique<LayoutNode>();
  second->leaf = true;
  second->pane_id = new_id;
  leaf->leaf = false;
  leaf->direction = direction;
  leaf->first = std::move(first);
  leaf->second = std::move(second);
  return new_id;
}

vl::Status PaneManager::SetGraph(int pane_id, std::unique_ptr<viewcl::ViewGraph> graph,
                                 std::string program_text) {
  Pane* pane = FindPane(pane_id);
  if (pane == nullptr) {
    return vl::NotFoundError(vl::StrFormat("no pane %d", pane_id));
  }
  if (pane->secondary) {
    return vl::FailedPreconditionError("cannot plot into a secondary pane");
  }
  pane->graph = std::move(graph);
  pane->program_text = std::move(program_text);
  pane->viewql_history.clear();
  pane->viewql_stats = viewql::ExecStats{};
  return vl::Status::Ok();
}

vl::StatusOr<int> PaneManager::CreateSecondary(int source_pane, std::vector<uint64_t> box_ids) {
  Pane* source = FindPane(source_pane);
  if (source == nullptr || source->graph == nullptr) {
    // A secondary source must itself resolve to a graph-bearing pane.
    if (source != nullptr && source->secondary) {
      source = FindPane(source->source_pane);
    }
    if (source == nullptr || (source->graph == nullptr && !source->secondary)) {
      return vl::FailedPreconditionError("source pane has no graph");
    }
  }
  Pane pane;
  pane.id = next_pane_id_++;
  pane.secondary = true;
  pane.source_pane = source->id;
  pane.subset = std::move(box_ids);
  int new_id = pane.id;
  panes_.emplace(new_id, std::move(pane));
  pane_order_.push_back(new_id);

  // Secondary panes attach to the layout by splitting the source pane.
  LayoutNode* leaf = FindLeaf(layout_.get(), source->id);
  if (leaf != nullptr) {
    auto first = std::make_unique<LayoutNode>();
    first->leaf = true;
    first->pane_id = source->id;
    auto second = std::make_unique<LayoutNode>();
    second->leaf = true;
    second->pane_id = new_id;
    leaf->leaf = false;
    leaf->direction = 'h';
    leaf->first = std::move(first);
    leaf->second = std::move(second);
  }
  return new_id;
}

viewcl::ViewGraph* PaneManager::graph(int pane_id) {
  Pane* pane = FindPane(pane_id);
  if (pane == nullptr) {
    return nullptr;
  }
  if (pane->secondary) {
    Pane* source = FindPane(pane->source_pane);
    return source != nullptr ? source->graph.get() : nullptr;
  }
  return pane->graph.get();
}

bool PaneManager::is_secondary(int pane_id) const {
  const Pane* pane = FindPane(pane_id);
  return pane != nullptr && pane->secondary;
}

std::string PaneManager::pane_title(int pane_id) const {
  const Pane* pane = FindPane(pane_id);
  if (pane == nullptr) {
    return "?";
  }
  if (pane->secondary) {
    return vl::StrFormat("pane %d (secondary of %d, %zu boxes)", pane_id, pane->source_pane,
                         pane->subset.size());
  }
  return vl::StrFormat("pane %d (primary%s)", pane_id,
                       pane->graph != nullptr ? "" : ", empty");
}

vl::Status PaneManager::ApplyViewQl(int pane_id, std::string_view program) {
  viewcl::ViewGraph* target = graph(pane_id);
  if (target == nullptr) {
    return vl::FailedPreconditionError("pane has no graph to refine");
  }
  viewql::QueryEngine engine(target, debugger_);
  VL_RETURN_IF_ERROR(engine.Execute(program));
  Pane* pane = FindPane(pane_id);
  pane->viewql_history.push_back(std::string(program));
  pane->viewql_stats.Merge(engine.stats());
  return vl::Status::Ok();
}

const viewql::ExecStats* PaneManager::exec_stats(int pane_id) const {
  const Pane* pane = FindPane(pane_id);
  return pane != nullptr ? &pane->viewql_stats : nullptr;
}

std::string PaneManager::program_text(int pane_id) const {
  const Pane* pane = FindPane(pane_id);
  return pane != nullptr ? pane->program_text : std::string();
}

const std::vector<std::string>* PaneManager::viewql_history(int pane_id) const {
  const Pane* pane = FindPane(pane_id);
  return pane != nullptr ? &pane->viewql_history : nullptr;
}

void PaneManager::AttachObservers(vl::TimeSeriesRecorder* recorder,
                                  vl::BudgetRegistry* budgets) {
  recorder_ = recorder;
  budgets_ = budgets;
}

vl::StatusOr<RefreshResult> PaneManager::RefreshPane(int pane_id, const ReplotFn& replot) {
  Pane* pane = FindPane(pane_id);
  if (pane == nullptr) {
    return vl::NotFoundError(vl::StrFormat("no pane %d", pane_id));
  }
  if (pane->secondary) {
    return vl::FailedPreconditionError("cannot refresh a secondary pane");
  }
  if (pane->program_text.empty()) {
    return vl::FailedPreconditionError("pane has no program to refresh");
  }
  if (replot == nullptr) {
    return vl::InvalidArgumentError("refresh needs a replot callback");
  }

  // Arm tree-mode tracing for the watchdog unless the caller already did
  // (the `vctrl explain` path clears + enables before calling us).
  vl::Tracer& tracer = vl::Tracer::Instance();
  bool armed = budgets_ != nullptr && budgets_->armed();
  bool was_enabled = tracer.enabled();
  bool own_tracing = armed && !(was_enabled && tracer.tree_enabled());
  if (own_tracing) {
    tracer.Clear();
    tracer.SetTreeEnabled(true);
    tracer.Enable();
  }

  uint64_t clock_before = 0;
  uint64_t reads_before = 0;
  uint64_t bytes_before = 0;
  uint64_t hit_before = 0;
  uint64_t miss_before = 0;
  if (debugger_ != nullptr) {
    clock_before = debugger_->target().clock().nanos();
    reads_before = debugger_->target().reads();
    bytes_before = debugger_->target().bytes_read();
    hit_before = debugger_->session().cache_stats().hit_bytes;
    miss_before = debugger_->session().cache_stats().miss_bytes;
  }

  vl::Status refresh_status = vl::Status::Ok();
  bool render_reused = false;
  {
    vl::ScopedSpan span("pane.refresh");
    refresh_status = [&]() -> vl::Status {
      std::string program = pane->program_text;
      std::vector<std::string> history = pane->viewql_history;
      VL_ASSIGN_OR_RETURN(std::unique_ptr<viewcl::ViewGraph> new_graph, replot(program));
      VL_RETURN_IF_ERROR(SetGraph(pane_id, std::move(new_graph), std::move(program)));
      for (const std::string& entry : history) {
        VL_RETURN_IF_ERROR(ApplyViewQl(pane_id, entry));
      }
      uint64_t hits_before = render_digest_hits_;
      (void)RenderPane(pane_id);
      render_reused = render_digest_hits_ > hits_before;
      return vl::Status::Ok();
    }();
  }

  RefreshResult result;
  if (debugger_ != nullptr) {
    result.refresh_ns = debugger_->target().clock().nanos() - clock_before;
    result.epoch = debugger_->target().memory_generation();
  }
  viewcl::ViewGraph* g = graph(pane_id);
  result.boxes = g != nullptr ? g->size() : 0;
  result.render_reused = render_reused;

  if (refresh_status.ok() && recorder_ != nullptr && recorder_->enabled()) {
    // One sample per refresh: the refresh's own cost deltas. ViewQL stats
    // were reset by SetGraph, so the pane's accumulated stats ARE this
    // refresh's share.
    std::map<std::string, int64_t> values;
    values["refresh_ns"] = static_cast<int64_t>(result.refresh_ns);
    values["epoch"] = static_cast<int64_t>(result.epoch);
    values["boxes"] = static_cast<int64_t>(result.boxes);
    if (debugger_ != nullptr) {
      values["reads"] = static_cast<int64_t>(debugger_->target().reads() - reads_before);
      values["bytes"] =
          static_cast<int64_t>(debugger_->target().bytes_read() - bytes_before);
      const dbg::CacheStats& cache = debugger_->session().cache_stats();
      values["hit_bytes"] = static_cast<int64_t>(cache.hit_bytes - hit_before);
      values["miss_bytes"] = static_cast<int64_t>(cache.miss_bytes - miss_before);
    }
    values["select_ns"] = static_cast<int64_t>(pane->viewql_stats.select_ns);
    values["update_ns"] = static_cast<int64_t>(pane->viewql_stats.update_ns);
    recorder_->Record(vl::StrFormat("pane.%d", pane_id), std::move(values));
  }

  // Watchdog: pane budgets check the refresh's clock delta; any other key is
  // a phase budget checked against that span's total time in this refresh.
  if (refresh_status.ok() && armed) {
    std::string pane_key = vl::StrFormat("pane.%d", pane_id);
    for (const auto& [key, budget_ns] : budgets_->budgets()) {
      uint64_t actual = 0;
      if (key == pane_key) {
        actual = result.refresh_ns;
      } else if (key.rfind("pane.", 0) == 0) {
        continue;  // another pane's budget; not this refresh's business
      } else {
        auto it = tracer.stats().find(key);
        if (it == tracer.stats().end()) {
          continue;
        }
        actual = it->second.total_ns;
      }
      if (actual > budget_ns) {
        budgets_->RecordViolation(key, budget_ns, actual, result.epoch,
                                  tracer.TreeToJson());
        result.violations.push_back(key);
      }
    }
  }

  if (own_tracing) {
    tracer.SetTreeEnabled(false);  // freeze the tree for inspection
    if (!was_enabled) {
      tracer.Disable();
    }
  }
  if (!refresh_status.ok()) {
    return refresh_status;
  }
  return result;
}

void PaneManager::RecordRenderSample(int pane_id) {
  const Pane* pane = FindPane(pane_id);
  if (pane == nullptr || recorder_ == nullptr) {
    return;
  }
  std::map<std::string, int64_t> values;
  if (debugger_ != nullptr) {
    values["clock_ns"] = static_cast<int64_t>(debugger_->target().clock().nanos());
    values["reads"] = static_cast<int64_t>(debugger_->target().reads());
    values["bytes"] = static_cast<int64_t>(debugger_->target().bytes_read());
    const dbg::CacheStats& cache = debugger_->session().cache_stats();
    values["hit_bytes"] = static_cast<int64_t>(cache.hit_bytes);
    values["miss_bytes"] = static_cast<int64_t>(cache.miss_bytes);
    values["epoch"] = static_cast<int64_t>(debugger_->target().memory_generation());
  }
  viewcl::ViewGraph* g = graph(pane_id);
  values["boxes"] = static_cast<int64_t>(g != nullptr ? g->size() : 0);
  values["statements"] = pane->viewql_stats.statements;
  values["select_ns"] = static_cast<int64_t>(pane->viewql_stats.select_ns);
  values["update_ns"] = static_cast<int64_t>(pane->viewql_stats.update_ns);
  recorder_->Record(vl::StrFormat("pane.%d.render", pane_id), std::move(values));
}

std::vector<FocusHit> PaneManager::FocusAddress(uint64_t addr) const {
  std::vector<FocusHit> hits;
  for (int id : pane_order_) {
    const Pane* pane = FindPane(id);
    const viewcl::ViewGraph* g =
        pane->secondary ? (FindPane(pane->source_pane) != nullptr
                               ? FindPane(pane->source_pane)->graph.get()
                               : nullptr)
                        : pane->graph.get();
    if (g == nullptr) {
      continue;
    }
    g->ForEachBox([&](const viewcl::VBox& box) {
      if (!box.is_virtual() && box.addr() == addr) {
        hits.push_back(FocusHit{id, box.id()});
      }
    });
  }
  return hits;
}

std::vector<FocusHit> PaneManager::FocusMember(const std::string& member, int64_t value) const {
  std::vector<FocusHit> hits;
  for (int id : pane_order_) {
    const Pane* pane = FindPane(id);
    const viewcl::ViewGraph* g =
        pane->secondary ? (FindPane(pane->source_pane) != nullptr
                               ? FindPane(pane->source_pane)->graph.get()
                               : nullptr)
                        : pane->graph.get();
    if (g == nullptr) {
      continue;
    }
    g->ForEachBox([&](const viewcl::VBox& box) {
      auto it = box.members().find(member);
      if (it != box.members().end() &&
          it->second.kind == viewcl::MemberValue::Kind::kInt && it->second.num == value) {
        hits.push_back(FocusHit{id, box.id()});
      }
    });
  }
  return hits;
}

std::string PaneManager::RenderPane(int pane_id, const RenderOptions& options,
                                    std::string_view backend) {
  vl::ScopedSpan span("render.pane");
  Pane* pane = FindPane(pane_id);
  if (pane == nullptr) {
    return "(no such pane)\n";
  }
  viewcl::ViewGraph* g = graph(pane_id);
  if (g == nullptr) {
    return "(empty pane)\n";
  }
  std::unique_ptr<Renderer> renderer = MakeRenderer(backend, options);
  if (renderer == nullptr) {
    return "(unknown render backend: " + std::string(backend) + ")\n";
  }

  // Digest cache: anything a back-end consumes is folded into the digest, so
  // same digest + same (backend, options) key => byte-identical output. For
  // secondary panes the digest is taken with the subset installed as roots,
  // so it also covers subset membership and order.
  std::string cache_key =
      vl::StrFormat("%s|%d%d|%d", std::string(backend).c_str(),
                    options.show_addresses ? 1 : 0, options.show_attributes ? 1 : 0,
                    options.max_container_preview);
  std::string out;
  bool reused = false;
  std::vector<uint64_t> saved;
  if (pane->secondary) {
    saved = g->roots();
    g->roots() = pane->subset;
  }
  uint64_t digest = g->Digest();
  auto cached = render_cache_enabled_ ? pane->render_cache.find(cache_key)
                                      : pane->render_cache.end();
  if (cached != pane->render_cache.end() && cached->second.first == digest) {
    out = cached->second.second;
    reused = true;
  } else {
    out = renderer->Render(*g);
    if (render_cache_enabled_) {
      pane->render_cache[cache_key] = {digest, out};
    }
  }
  if (pane->secondary) {
    g->roots() = saved;
  }
  if (reused) {
    ++render_digest_hits_;
  } else {
    ++render_digest_misses_;
  }
  if (vl::Tracer::Instance().enabled()) {
    vl::MetricsRegistry::Instance()
        .GetCounter(reused ? "render.digest.hits" : "render.digest.misses")
        ->Add(1);
  }
  // The disabled cost of the watch hook is this one branch (bench_micro
  // guards it alongside the tracing-off fast path).
  if (recorder_ != nullptr && recorder_->enabled()) {
    RecordRenderSample(pane_id);
  }
  return out;
}

void PaneManager::LayoutToAscii(const LayoutNode* node, int depth, std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node->leaf) {
    *out += pane_title(node->pane_id) + "\n";
    return;
  }
  *out += node->direction == 'h' ? "split-h\n" : "split-v\n";
  LayoutToAscii(node->first.get(), depth + 1, out);
  LayoutToAscii(node->second.get(), depth + 1, out);
}

std::string PaneManager::LayoutAscii() const {
  std::string out;
  LayoutToAscii(layout_.get(), 0, &out);
  return out;
}

vl::Json PaneManager::LayoutToJson(const LayoutNode* node) const {
  vl::Json j = vl::Json::Object();
  if (node->leaf) {
    j["pane"] = vl::Json::Int(node->pane_id);
    return j;
  }
  j["dir"] = vl::Json::Str(std::string(1, node->direction));
  j["first"] = LayoutToJson(node->first.get());
  j["second"] = LayoutToJson(node->second.get());
  return j;
}

vl::Json PaneManager::SaveState() const {
  vl::Json state = vl::Json::Object();
  state["layout"] = LayoutToJson(layout_.get());
  vl::Json panes = vl::Json::Array();
  for (int id : pane_order_) {
    const Pane* pane = FindPane(id);
    vl::Json jpane = vl::Json::Object();
    jpane["id"] = vl::Json::Int(id);
    jpane["secondary"] = vl::Json::Bool(pane->secondary);
    if (pane->secondary) {
      jpane["source"] = vl::Json::Int(pane->source_pane);
      vl::Json subset = vl::Json::Array();
      for (uint64_t box : pane->subset) {
        subset.Append(vl::Json::Int(static_cast<int64_t>(box)));
      }
      jpane["subset"] = std::move(subset);
    } else {
      jpane["program"] = vl::Json::Str(pane->program_text);
      vl::Json history = vl::Json::Array();
      for (const std::string& entry : pane->viewql_history) {
        history.Append(vl::Json::Str(entry));
      }
      jpane["viewql"] = std::move(history);
      if (pane->viewql_stats.statements > 0) {
        jpane["exec"] = pane->viewql_stats.ToJson();
      }
    }
    panes.Append(std::move(jpane));
  }
  state["panes"] = std::move(panes);
  // Extraction cost profile (ignored by LoadState; sessions stay replayable).
  if (debugger_ != nullptr) {
    state["stats"] = debugger_->target().StatsToJson();
    state["cache"] = debugger_->session().StatsToJson();
  }
  return state;
}

vl::StatusOr<std::unique_ptr<PaneManager::LayoutNode>> PaneManager::LayoutFromJson(
    const vl::Json& node) {
  auto out = std::make_unique<LayoutNode>();
  if (const vl::Json* pane = node.Find("pane")) {
    out->leaf = true;
    out->pane_id = static_cast<int>(pane->AsInt());
    return out;
  }
  const vl::Json* dir = node.Find("dir");
  const vl::Json* first = node.Find("first");
  const vl::Json* second = node.Find("second");
  if (dir == nullptr || first == nullptr || second == nullptr) {
    return vl::ParseError("malformed layout node");
  }
  out->leaf = false;
  out->direction = dir->AsString().empty() ? 'h' : dir->AsString()[0];
  VL_ASSIGN_OR_RETURN(out->first, LayoutFromJson(*first));
  VL_ASSIGN_OR_RETURN(out->second, LayoutFromJson(*second));
  return out;
}

vl::Status PaneManager::LoadState(const vl::Json& state, const ReplotFn& replot) {
  const vl::Json* layout = state.Find("layout");
  const vl::Json* panes = state.Find("panes");
  if (layout == nullptr || panes == nullptr) {
    return vl::ParseError("malformed session state");
  }
  VL_ASSIGN_OR_RETURN(std::unique_ptr<LayoutNode> new_layout, LayoutFromJson(*layout));

  panes_.clear();
  pane_order_.clear();
  next_pane_id_ = 1;
  for (const vl::Json& jpane : panes->items()) {
    Pane pane;
    pane.id = static_cast<int>(jpane.Find("id")->AsInt());
    next_pane_id_ = std::max(next_pane_id_, pane.id + 1);
    const vl::Json* secondary = jpane.Find("secondary");
    pane.secondary = secondary != nullptr && secondary->AsBool();
    if (pane.secondary) {
      pane.source_pane = static_cast<int>(jpane.Find("source")->AsInt());
      if (const vl::Json* subset = jpane.Find("subset")) {
        for (const vl::Json& box : subset->items()) {
          pane.subset.push_back(static_cast<uint64_t>(box.AsInt()));
        }
      }
    } else {
      if (const vl::Json* program = jpane.Find("program")) {
        pane.program_text = program->AsString();
      }
      if (!pane.program_text.empty() && replot != nullptr) {
        VL_ASSIGN_OR_RETURN(pane.graph, replot(pane.program_text));
      }
    }
    int id = pane.id;
    panes_.emplace(id, std::move(pane));
    pane_order_.push_back(id);
  }
  layout_ = std::move(new_layout);
  // Re-apply the recorded ViewQL history against the replotted graphs.
  for (const vl::Json& jpane : panes->items()) {
    if (const vl::Json* history = jpane.Find("viewql")) {
      int id = static_cast<int>(jpane.Find("id")->AsInt());
      for (const vl::Json& entry : history->items()) {
        vl::Status status = ApplyViewQl(id, entry.AsString());
        if (!status.ok()) {
          return status;
        }
      }
    }
  }
  return vl::Status::Ok();
}

}  // namespace vision
