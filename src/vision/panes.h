// The pane-based interactive debugger front-end (paper §2.4).
//
// Panes form a tmux-style split tree. Primary panes display a ViewCL-extracted
// object graph (further customizable with ViewQL); secondary panes display a
// focused subset of another pane's boxes. The "focus" operation searches every
// displayed graph for a given object — the paper's Figure 2 workflow.

#ifndef SRC_VISION_PANES_H_
#define SRC_VISION_PANES_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/support/budget.h"
#include "src/support/json.h"
#include "src/support/timeseries.h"
#include "src/viewcl/graph.h"
#include "src/viewql/query.h"
#include "src/vision/render.h"

namespace vision {

struct FocusHit {
  int pane_id = 0;
  uint64_t box_id = viewcl::kNoBox;
};

// What one pane refresh cost, on the deterministic virtual clock.
struct RefreshResult {
  uint64_t refresh_ns = 0;  // clock delta across replot + ViewQL + render
  uint64_t epoch = 0;       // kernel mutation epoch the refresh observed
  size_t boxes = 0;         // graph size after the refresh
  // True when the graph digest matched the previous render and the cached
  // output was served instead of re-rendering (see ViewGraph::Digest).
  bool render_reused = false;
  // Budget keys the watchdog flagged on this refresh (details, including the
  // explain tree, land in the attached BudgetRegistry).
  std::vector<std::string> violations;
};

class PaneManager {
 public:
  // `debugger` powers ViewQL raw-field WHERE fallback; may be null.
  explicit PaneManager(dbg::KernelDebugger* debugger);

  // --- pane lifecycle ---
  // The manager starts with one empty primary pane (id 1).
  int root_pane() const { return 1; }

  // Splits `pane_id`, creating a new empty primary pane; 'h' stacks them
  // side by side, 'v' on top of each other. Returns the new pane id.
  vl::StatusOr<int> Split(int pane_id, char direction);

  // Installs a freshly plotted graph into a primary pane.
  vl::Status SetGraph(int pane_id, std::unique_ptr<viewcl::ViewGraph> graph,
                      std::string program_text);

  // Creates a secondary pane showing `box_ids` of `source_pane`'s graph.
  vl::StatusOr<int> CreateSecondary(int source_pane, std::vector<uint64_t> box_ids);

  // Applies a ViewQL program to the pane's graph (the refine operation).
  vl::Status ApplyViewQl(int pane_id, std::string_view program);

  // Rebuilds a primary pane's graph from its ViewCL program text — shared by
  // LoadState (session replay) and RefreshPane (live re-extraction).
  using ReplotFn =
      std::function<vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>>(const std::string&)>;

  // --- vexplain: refresh accounting, time-series, budgets ---
  // Wires the monitoring side-cars in (raw observers; caller keeps ownership,
  // null detaches). The recorder gets one sample per refresh and — when
  // enabled — one cumulative snapshot per render; the budget registry's
  // watchdog runs after every RefreshPane.
  void AttachObservers(vl::TimeSeriesRecorder* recorder, vl::BudgetRegistry* budgets);
  vl::TimeSeriesRecorder* recorder() const { return recorder_; }
  vl::BudgetRegistry* budgets() const { return budgets_; }

  // Re-extracts a primary pane end to end — replot its ViewCL program,
  // re-apply its ViewQL history, render — under one "pane.refresh" span, and
  // measures the whole thing on Target::clock(). While budgets are armed the
  // refresh runs with the tracer in tree mode (cleared first) so violations
  // carry the refresh's explain tree; tracer state is restored afterwards
  // (the tree stays frozen for inspection). With tracing already on in tree
  // mode (the `vctrl explain` path) the caller's setup is left untouched.
  vl::StatusOr<RefreshResult> RefreshPane(int pane_id, const ReplotFn& replot);

  // --- focus: search all panes for an object ---
  std::vector<FocusHit> FocusAddress(uint64_t addr) const;
  // Finds boxes whose evaluated member equals the value (e.g. pid == 42).
  std::vector<FocusHit> FocusMember(const std::string& member, int64_t value) const;

  // --- access ---
  viewcl::ViewGraph* graph(int pane_id);
  const std::vector<int>& pane_ids() const { return pane_order_; }
  bool is_secondary(int pane_id) const;
  std::string pane_title(int pane_id) const;
  // Accumulated ViewQL execution stats for a pane (null if no such pane).
  const viewql::ExecStats* exec_stats(int pane_id) const;
  // The pane's ViewCL source (empty for secondary panes / unknown ids) and
  // the ViewQL programs applied to it, in order — the lint gate's inputs.
  std::string program_text(int pane_id) const;
  const std::vector<std::string>* viewql_history(int pane_id) const;

  // Renders one pane (secondary panes render their subset only) with the
  // named back-end ("ascii", "dot", "json" — see MakeRenderer). Rendering is
  // digest-cached per (backend, options): when the graph's structural digest
  // matches the previous render under the same key, the cached output is
  // returned without re-running the renderer. The cache deliberately survives
  // SetGraph — an incremental refresh that reproduces the same graph skips
  // the re-render entirely.
  std::string RenderPane(int pane_id, const RenderOptions& options = RenderOptions{},
                         std::string_view backend = "ascii");
  // How many RenderPane calls were served from the digest cache vs rendered.
  uint64_t render_digest_hits() const { return render_digest_hits_; }
  uint64_t render_digest_misses() const { return render_digest_misses_; }
  // Master switch for the digest cache (vserve::SessionOptions::render_cache
  // consolidates this with the extraction-cache config). Disabling re-renders
  // every call; existing cached entries are kept but not consulted.
  void set_render_cache_enabled(bool on) { render_cache_enabled_ = on; }
  bool render_cache_enabled() const { return render_cache_enabled_; }
  // ASCII sketch of the split layout.
  std::string LayoutAscii() const;

  // --- session persistence (paper §4.2) ---
  // The saved state is replayable: pane layout, each primary pane's ViewCL
  // program text, and the ViewQL history applied to it.
  vl::Json SaveState() const;
  // Restores layout + programs from `state`; `replot` is called to rebuild
  // each primary pane's graph from its program text.
  vl::Status LoadState(const vl::Json& state, const ReplotFn& replot);

 private:
  struct Pane {
    int id = 0;
    bool secondary = false;
    std::unique_ptr<viewcl::ViewGraph> graph;  // primary panes
    std::string program_text;                  // ViewCL source (primary)
    std::vector<std::string> viewql_history;
    viewql::ExecStats viewql_stats;            // accumulated over the history
    int source_pane = 0;                       // secondary panes
    std::vector<uint64_t> subset;              // secondary panes
    // Digest-keyed render memo: "backend|options" -> (graph digest, output).
    std::map<std::string, std::pair<uint64_t, std::string>> render_cache;
  };

  struct LayoutNode {
    bool leaf = true;
    int pane_id = 0;
    char direction = 'h';
    std::unique_ptr<LayoutNode> first, second;
  };

  Pane* FindPane(int pane_id);
  const Pane* FindPane(int pane_id) const;
  // Appends a cumulative stats snapshot to series "pane.<id>.render".
  void RecordRenderSample(int pane_id);
  LayoutNode* FindLeaf(LayoutNode* node, int pane_id);
  void LayoutToAscii(const LayoutNode* node, int depth, std::string* out) const;
  vl::Json LayoutToJson(const LayoutNode* node) const;
  vl::StatusOr<std::unique_ptr<LayoutNode>> LayoutFromJson(const vl::Json& node);

  dbg::KernelDebugger* debugger_;
  vl::TimeSeriesRecorder* recorder_ = nullptr;  // not owned; null = detached
  vl::BudgetRegistry* budgets_ = nullptr;       // not owned; null = detached
  std::map<int, Pane> panes_;
  std::vector<int> pane_order_;
  std::unique_ptr<LayoutNode> layout_;
  int next_pane_id_ = 1;
  bool render_cache_enabled_ = true;
  uint64_t render_digest_hits_ = 0;
  uint64_t render_digest_misses_ = 0;
};

}  // namespace vision

#endif  // SRC_VISION_PANES_H_
