#include "src/support/status.h"

namespace vl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kEvalError:
      return "EVAL_ERROR";
    case StatusCode::kMemoryFault:
      return "MEMORY_FAULT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status EvalError(std::string message) {
  return Status(StatusCode::kEvalError, std::move(message));
}
Status MemoryFaultError(std::string message) {
  return Status(StatusCode::kMemoryFault, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace vl
