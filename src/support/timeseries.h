// Bounded refresh time-series for the vexplain monitoring layer.
//
// A TimeSeriesRecorder holds named series of samples; each sample is a sorted
// {key -> int64} map stamped with a process-monotonic sequence number. The
// vision layer records one sample per pane refresh (per-refresh deltas of the
// transport/cache/ViewQL stats) and one per render (cumulative snapshots), so
// cost drift across kernel mutation epochs becomes visible with `vctrl watch`.
//
// Every value derives from the deterministic virtual clock and object
// counters — never wall-clock time — so two identical runs record identical
// series. Each series is bounded (oldest samples shed first, counted per
// series), and recording is a no-op unless the recorder is enabled, keeping
// the disabled cost to one branch (guarded in bench_micro).

#ifndef SRC_SUPPORT_TIMESERIES_H_
#define SRC_SUPPORT_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace vl {

struct TimeSample {
  uint64_t seq = 0;  // recorder-wide monotonic sequence number
  std::map<std::string, int64_t> values;
};

class TimeSeriesRecorder {
 public:
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Max samples retained per series; shrinking sheds oldest samples (counted
  // as dropped for their series).
  void SetCapacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  // Appends a sample (regardless of the enabled flag — instrumentation sites
  // gate on enabled() themselves, mirroring the tracer convention).
  void Record(const std::string& series, std::map<std::string, int64_t> values);

  // Null if the series has never been recorded.
  const std::deque<TimeSample>* Find(const std::string& series) const;
  uint64_t dropped(const std::string& series) const;
  std::vector<std::string> SeriesNames() const;

  void Clear();

  // {"enabled": ..., "capacity": ..., "series": {name: {"dropped": n,
  //  "samples": [{"seq": ..., "values": {...}}, ...]}}}
  Json ToJson() const;
  Json SeriesToJson(const std::string& series) const;

  // One line per key: "key [sparkline] last=.. min=.. max=..", keys sorted.
  std::string TextReport(const std::string& series) const;
  // Sparkline (block glyphs, one per sample, oldest first) for one key.
  std::string Sparkline(const std::string& series, const std::string& key) const;

 private:
  struct Series {
    std::deque<TimeSample> samples;
    uint64_t dropped = 0;
  };

  bool enabled_ = false;
  size_t capacity_ = 256;
  uint64_t next_seq_ = 0;
  std::map<std::string, Series> series_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_TIMESERIES_H_
