// A minimal JSON value, writer, and parser — used for the visualizer wire
// format (the HTTP payload of the paper's front-end) and session persistence.

#ifndef SRC_SUPPORT_JSON_H_
#define SRC_SUPPORT_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace vl {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool v) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = v;
    return j;
  }
  static Json Number(double v) {
    Json j;
    j.kind_ = Kind::kNumber;
    j.num_ = v;
    return j;
  }
  static Json Int(int64_t v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string v) {
    Json j;
    j.kind_ = Kind::kString;
    j.str_ = std::move(v);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }

  // Array access.
  void Append(Json v) { arr_.push_back(std::move(v)); }
  size_t size() const { return kind_ == Kind::kArray ? arr_.size() : obj_.size(); }
  const Json& at(size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const { return arr_; }

  // Object access.
  Json& operator[](const std::string& key) { return obj_[key]; }
  const Json* Find(const std::string& key) const {
    auto it = obj_.find(key);
    return it != obj_.end() ? &it->second : nullptr;
  }
  const std::map<std::string, Json>& entries() const { return obj_; }

  // Serialization; indent < 0 emits compact form.
  std::string Dump(int indent = -1) const;

  static StatusOr<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_JSON_H_
