#include "src/support/timeseries.h"

#include <algorithm>

#include "src/support/str.h"

namespace vl {

namespace {

// Eight-level sparkline glyphs, lowest to highest.
const char* const kSparkLevels[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};

}  // namespace

void TimeSeriesRecorder::SetCapacity(size_t capacity) {
  capacity_ = std::max<size_t>(1, capacity);
  for (auto& [name, series] : series_) {
    while (series.samples.size() > capacity_) {
      series.samples.pop_front();
      series.dropped++;
    }
  }
}

void TimeSeriesRecorder::Record(const std::string& series_name,
                                std::map<std::string, int64_t> values) {
  Series& series = series_[series_name];
  TimeSample sample;
  sample.seq = next_seq_++;
  sample.values = std::move(values);
  series.samples.push_back(std::move(sample));
  while (series.samples.size() > capacity_) {
    series.samples.pop_front();
    series.dropped++;
  }
}

const std::deque<TimeSample>* TimeSeriesRecorder::Find(const std::string& series) const {
  auto it = series_.find(series);
  return it != series_.end() ? &it->second.samples : nullptr;
}

uint64_t TimeSeriesRecorder::dropped(const std::string& series) const {
  auto it = series_.find(series);
  return it != series_.end() ? it->second.dropped : 0;
}

std::vector<std::string> TimeSeriesRecorder::SeriesNames() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    out.push_back(name);
  }
  return out;
}

void TimeSeriesRecorder::Clear() {
  series_.clear();
  next_seq_ = 0;
}

Json TimeSeriesRecorder::SeriesToJson(const std::string& series_name) const {
  Json j = Json::Object();
  auto it = series_.find(series_name);
  if (it == series_.end()) {
    j["dropped"] = Json::Int(0);
    j["samples"] = Json::Array();
    return j;
  }
  j["dropped"] = Json::Int(static_cast<int64_t>(it->second.dropped));
  Json samples = Json::Array();
  for (const TimeSample& sample : it->second.samples) {
    Json s = Json::Object();
    s["seq"] = Json::Int(static_cast<int64_t>(sample.seq));
    Json values = Json::Object();
    for (const auto& [key, value] : sample.values) {
      values[key] = Json::Int(value);
    }
    s["values"] = std::move(values);
    samples.Append(std::move(s));
  }
  j["samples"] = std::move(samples);
  return j;
}

Json TimeSeriesRecorder::ToJson() const {
  Json j = Json::Object();
  j["enabled"] = Json::Bool(enabled_);
  j["capacity"] = Json::Int(static_cast<int64_t>(capacity_));
  Json all = Json::Object();
  for (const auto& [name, series] : series_) {
    all[name] = SeriesToJson(name);
  }
  j["series"] = std::move(all);
  return j;
}

std::string TimeSeriesRecorder::Sparkline(const std::string& series_name,
                                          const std::string& key) const {
  auto it = series_.find(series_name);
  if (it == series_.end() || it->second.samples.empty()) {
    return "";
  }
  std::vector<int64_t> values;
  values.reserve(it->second.samples.size());
  for (const TimeSample& sample : it->second.samples) {
    auto found = sample.values.find(key);
    values.push_back(found != sample.values.end() ? found->second : 0);
  }
  int64_t lo = *std::min_element(values.begin(), values.end());
  int64_t hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (int64_t v : values) {
    size_t level = 0;
    if (hi > lo) {
      level = static_cast<size_t>(((v - lo) * 7) / (hi - lo));
    }
    out += kSparkLevels[level];
  }
  return out;
}

std::string TimeSeriesRecorder::TextReport(const std::string& series_name) const {
  auto it = series_.find(series_name);
  if (it == series_.end() || it->second.samples.empty()) {
    return "(no samples for series '" + series_name + "')\n";
  }
  const Series& series = it->second;
  std::string out = StrFormat("series %s: %zu samples (%llu dropped)\n",
                              series_name.c_str(), series.samples.size(),
                              static_cast<unsigned long long>(series.dropped));
  // Union of keys across samples, sorted (map order).
  std::map<std::string, bool> keys;
  for (const TimeSample& sample : series.samples) {
    for (const auto& [key, value] : sample.values) {
      keys[key] = true;
    }
  }
  for (const auto& [key, present] : keys) {
    int64_t last = 0;
    int64_t lo = 0;
    int64_t hi = 0;
    bool first = true;
    for (const TimeSample& sample : series.samples) {
      auto found = sample.values.find(key);
      int64_t v = found != sample.values.end() ? found->second : 0;
      if (first || v < lo) {
        lo = v;
      }
      if (first || v > hi) {
        hi = v;
      }
      last = v;
      first = false;
    }
    out += StrFormat("  %-14s %s last=%lld min=%lld max=%lld\n", key.c_str(),
                     Sparkline(series_name, key).c_str(), static_cast<long long>(last),
                     static_cast<long long>(lo), static_cast<long long>(hi));
  }
  return out;
}

}  // namespace vl
