#include "src/support/budget.h"

#include <algorithm>

#include "src/support/str.h"

namespace vl {

const uint64_t* BudgetRegistry::Find(const std::string& key) const {
  auto it = budgets_.find(key);
  return it != budgets_.end() ? &it->second : nullptr;
}

void BudgetRegistry::SetCapacity(size_t capacity) {
  capacity_ = std::max<size_t>(1, capacity);
  while (violations_.size() > capacity_) {
    violations_.pop_front();
    dropped_++;
  }
}

void BudgetRegistry::RecordViolation(const std::string& key, uint64_t budget_ns,
                                     uint64_t actual_ns, uint64_t epoch,
                                     Json explain) {
  BudgetViolation violation;
  violation.seq = next_seq_++;
  violation.key = key;
  violation.budget_ns = budget_ns;
  violation.actual_ns = actual_ns;
  violation.epoch = epoch;
  violation.explain = std::move(explain);
  violations_.push_back(std::move(violation));
  while (violations_.size() > capacity_) {
    violations_.pop_front();
    dropped_++;
  }
}

void BudgetRegistry::ClearViolations() {
  violations_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

Json BudgetRegistry::ReportJson() const {
  Json root = Json::Object();
  root["enabled"] = Json::Bool(enabled_);
  Json budgets = Json::Object();
  for (const auto& [key, budget_ns] : budgets_) {
    budgets[key] = Json::Int(static_cast<int64_t>(budget_ns));
  }
  root["budgets"] = std::move(budgets);
  root["dropped"] = Json::Int(static_cast<int64_t>(dropped_));
  Json violations = Json::Array();
  for (const BudgetViolation& violation : violations_) {
    Json v = Json::Object();
    v["seq"] = Json::Int(static_cast<int64_t>(violation.seq));
    v["key"] = Json::Str(violation.key);
    v["budget_ns"] = Json::Int(static_cast<int64_t>(violation.budget_ns));
    v["actual_ns"] = Json::Int(static_cast<int64_t>(violation.actual_ns));
    v["epoch"] = Json::Int(static_cast<int64_t>(violation.epoch));
    v["explain"] = violation.explain;
    violations.Append(std::move(v));
  }
  root["violations"] = std::move(violations);
  return root;
}

std::string BudgetRegistry::ReportText() const {
  std::string out = StrFormat("budgets (%s):\n", enabled_ ? "enabled" : "disabled");
  if (budgets_.empty()) {
    out += "  (none)\n";
  }
  for (const auto& [key, budget_ns] : budgets_) {
    out += StrFormat("  %-24s %llu ns\n", key.c_str(),
                     static_cast<unsigned long long>(budget_ns));
  }
  out += StrFormat("violations: %zu (%llu dropped)\n", violations_.size(),
                   static_cast<unsigned long long>(dropped_));
  for (const BudgetViolation& violation : violations_) {
    out += StrFormat("  #%llu %-24s budget %llu ns, actual %llu ns (+%llu ns) epoch %llu\n",
                     static_cast<unsigned long long>(violation.seq),
                     violation.key.c_str(),
                     static_cast<unsigned long long>(violation.budget_ns),
                     static_cast<unsigned long long>(violation.actual_ns),
                     static_cast<unsigned long long>(violation.actual_ns -
                                                     violation.budget_ns),
                     static_cast<unsigned long long>(violation.epoch));
  }
  return out;
}

}  // namespace vl
