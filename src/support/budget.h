// Latency budgets and violation records for the vexplain monitoring layer.
//
// A BudgetRegistry maps budget keys — pane identities ("pane.3") or pipeline
// phase span names ("viewcl.eval", "dbg.read") — to nanosecond ceilings on
// the deterministic virtual clock. The vision layer checks every armed budget
// after each pane refresh: pane budgets against the refresh's clock delta,
// phase budgets against that phase's total span time within the refresh.
//
// A violation is a structured event carrying the offending refresh's full
// explain tree (the tracer's calling-context tree serialized to JSON), so a
// budget report answers not just "what was slow" but "which statement /
// definition / adapter / struct type the time was charged to". Violations are
// bounded (oldest shed first, counted), and — like everything in this layer —
// byte-reproducible: identical runs produce identical reports.

#ifndef SRC_SUPPORT_BUDGET_H_
#define SRC_SUPPORT_BUDGET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/support/json.h"

namespace vl {

struct BudgetViolation {
  uint64_t seq = 0;        // registry-wide monotonic sequence number
  std::string key;         // the violated budget's key
  uint64_t budget_ns = 0;  // the configured ceiling
  uint64_t actual_ns = 0;  // the charged time that breached it
  uint64_t epoch = 0;      // kernel mutation epoch of the offending refresh
  Json explain;            // explain tree of the offending refresh
};

class BudgetRegistry {
 public:
  // The master switch: budgets stay configured while disabled, but the
  // watchdog does not check them (and pane refreshes skip the tree-mode
  // tracing needed to attach explain trees).
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // True when the watchdog has any work to do on a refresh.
  bool armed() const { return enabled_ && !budgets_.empty(); }

  void Set(const std::string& key, uint64_t budget_ns) { budgets_[key] = budget_ns; }
  void Remove(const std::string& key) { budgets_.erase(key); }
  void ClearBudgets() { budgets_.clear(); }
  const std::map<std::string, uint64_t>& budgets() const { return budgets_; }
  // Null if no budget is set for key.
  const uint64_t* Find(const std::string& key) const;

  // Max violations retained; shrinking sheds oldest (counted as dropped).
  void SetCapacity(size_t capacity);
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  void RecordViolation(const std::string& key, uint64_t budget_ns,
                       uint64_t actual_ns, uint64_t epoch, Json explain);
  const std::deque<BudgetViolation>& violations() const { return violations_; }
  void ClearViolations();

  // {"enabled": ..., "budgets": {key: ns}, "dropped": n, "violations":
  //  [{"seq", "key", "budget_ns", "actual_ns", "epoch", "explain"}, ...]}
  Json ReportJson() const;
  // Configured budgets plus one line per violation, oldest first.
  std::string ReportText() const;

 private:
  bool enabled_ = true;
  size_t capacity_ = 64;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  std::map<std::string, uint64_t> budgets_;
  std::deque<BudgetViolation> violations_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_BUDGET_H_
