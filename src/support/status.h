// Lightweight error-handling vocabulary used across the library.
//
// The library does not throw across public API boundaries; fallible operations
// return Status or StatusOr<T>. DSL front-ends (ViewCL/ViewQL parsers) attach
// line/column information to the message.

#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  kEvalError,
  kMemoryFault,
  kResourceExhausted,
};

// Human-readable name of a status code ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result with a message. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "PARSE_ERROR: unexpected token" style rendering.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ParseError(std::string message);
Status EvalError(std::string message);
Status MemoryFaultError(std::string message);
Status ResourceExhaustedError(std::string message);

// A value or an error. Modeled after absl::StatusOr but minimal.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(repr_).ok() && "OK status must carry a value");
  }
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace vl

// Propagates an error Status from an expression that yields Status.
#define VL_RETURN_IF_ERROR(expr)         \
  do {                                   \
    ::vl::Status vl_status_ = (expr);    \
    if (!vl_status_.ok()) {              \
      return vl_status_;                 \
    }                                    \
  } while (0)

// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define VL_ASSIGN_OR_RETURN(lhs, expr)      \
  VL_ASSIGN_OR_RETURN_IMPL_(VL_CONCAT_(vl_statusor_, __LINE__), lhs, expr)
#define VL_CONCAT_INNER_(a, b) a##b
#define VL_CONCAT_(a, b) VL_CONCAT_INNER_(a, b)
#define VL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

#endif  // SRC_SUPPORT_STATUS_H_
