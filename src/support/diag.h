// Diagnostic engine for the ViewCL/ViewQL front-ends (vlint, paper §2.2's
// "declarative specification" pitch demands pre-execution checking).
//
// A Diagnostic carries a stable rule ID ("VL001"), a severity, a source Span
// (line/col/byte offset/length), a message, and an optional fix-it. Rendering
// is deterministic: the same source + diagnostics always produce byte-stable
// text (with caret underlines) and JSON.

#ifndef SRC_SUPPORT_DIAG_H_
#define SRC_SUPPORT_DIAG_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"

namespace vl {

// A half-open byte range [offset, offset+length) plus its 1-based line/col.
// A zero-length span points at a position (caret with no underline tail).
struct Span {
  int line = 0;
  int col = 0;
  size_t offset = 0;
  size_t length = 0;

  bool valid() const { return line > 0; }
};

enum class Severity { kNote, kWarning, kError };

std::string_view SeverityName(Severity s);

// A suggested textual replacement for span (empty replacement = deletion).
struct FixIt {
  Span span;
  std::string replacement;
};

struct Diagnostic {
  std::string rule;  // stable ID, e.g. "VL001"
  Severity severity = Severity::kError;
  Span span;
  std::string message;
  bool has_fixit = false;
  FixIt fixit;
};

// An ordered collection of diagnostics with rendering helpers. Order is
// source order (byte offset, then rule ID) after Sort(); producers append in
// discovery order and call Sort() once before rendering.
class DiagnosticList {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }
  Diagnostic& AddRule(std::string rule, Severity severity, Span span, std::string message);

  void Sort();

  const std::vector<Diagnostic>& diags() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }

  size_t Count(Severity s) const;
  size_t errors() const { return Count(Severity::kError); }
  size_t warnings() const { return Count(Severity::kWarning); }

  // Deterministic human-readable rendering:
  //   <name>:<line>:<col>: error[VL003]: unknown Box 'Tsk'
  //     3 |   yield Tsk<task_struct.se.run_node>(@node)
  //       |         ^~~
  //       | fix-it: replace with 'Task'
  // followed by a one-line summary. `name` labels the program (file or pane).
  std::string RenderText(std::string_view source, std::string_view name) const;

  // {"name":..., "diagnostics":[{rule,severity,line,col,offset,length,message,
  //  fixit?:{line,col,offset,length,replacement}}...], "errors":N,
  //  "warnings":N, "notes":N}
  Json ToJson(std::string_view name) const;

 private:
  std::vector<Diagnostic> diags_;
};

// Applies every fix-it in `diags` to `source` and returns the patched text.
// Fix-its are applied right-to-left by byte offset; overlapping ones after
// the first are skipped so the result is always well-defined.
std::string ApplyFixIts(std::string_view source, const std::vector<Diagnostic>& diags);

}  // namespace vl

#endif  // SRC_SUPPORT_DIAG_H_
