// Deterministic hierarchical span tracing for the extract→query→render
// pipeline.
//
// Spans are stamped with *virtual* time (the debugger target's VirtualClock,
// the same clock Table 4 reports) plus a monotonic sequence number, never with
// wall-clock time — so two identical runs produce byte-identical traces, in
// the spirit of rr's deterministic event recording. Completed spans land in a
// bounded ring buffer (oldest evicted first); per-name aggregates (count,
// total, self time) are kept separately and never evicted, which is what the
// `vprof` self-time breakdown and the text report consume.
//
// The fast path when tracing is off is a single relaxed atomic flag load:
//
//   if (tracer->enabled()) { ...slow path... }
//
// Self time is computed at record time: every open span accumulates the
// duration of its direct children, and EndSpan charges `dur - children` to the
// span's own name. Summed over all spans, self times exactly partition the
// root spans' durations — which is how `vprof` reconciles its breakdown
// against Target::clock() to the nanosecond.

#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/support/json.h"
#include "src/support/vclock.h"

namespace vl {

// One completed span, as stored in the ring buffer.
struct TraceEvent {
  std::string name;
  uint64_t ts_ns = 0;    // virtual time at span begin
  uint64_t dur_ns = 0;   // virtual duration
  uint64_t self_ns = 0;  // dur_ns minus direct children
  uint64_t seq = 0;      // sequence number assigned at begin (total order)
  int depth = 0;         // nesting depth at begin (0 = root)
  std::vector<std::pair<std::string, int64_t>> args;
};

// Per-name aggregate, never evicted.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
};

class Tracer {
 public:
  static Tracer& Instance();

  // --- control ---
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // The raw flag, for instrumentation sites that cache a pointer to avoid the
  // function-local-static guard on every check (the Target read fast path).
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // The time source: the active debugger target's virtual clock. Registered
  // by Target's constructor (last target created wins), cleared by its
  // destructor. With no clock, timestamps read 0 and only sequence numbers
  // order events.
  void SetClock(const VirtualClock* clock) { clock_ = clock; }
  void ClearClockIf(const VirtualClock* clock) {
    if (clock_ == clock) {
      clock_ = nullptr;
    }
  }
  const VirtualClock* clock() const { return clock_; }
  uint64_t NowNanos() const { return clock_ != nullptr ? clock_->nanos() : 0; }

  // --- recording ---
  void BeginSpan(std::string name);
  void EndSpan();
  // Records an already-timed leaf span (e.g. one dbg.read, whose duration is
  // the charge it put on the clock). Attributed as a child of the open span.
  void CompleteEvent(std::string name, uint64_t ts_ns, uint64_t dur_ns,
                     std::vector<std::pair<std::string, int64_t>> args = {});

  // Drops all events, aggregates, open spans; resets the sequence counter.
  // Does not touch the enabled flag or the clock registration.
  void Clear();
  void SetCapacity(size_t capacity);

  // --- inspection ---
  size_t open_spans() const { return stack_.size(); }
  uint64_t dropped() const { return dropped_; }
  uint64_t recorded() const { return seq_; }
  // Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  const std::map<std::string, SpanStats>& stats() const { return stats_; }
  // Sum of self times across all completed spans == sum of root durations.
  uint64_t TotalSelfNanos() const;

  // --- exporters ---
  // Chrome trace_event JSON (chrome://tracing / Perfetto). Timestamps are
  // virtual nanoseconds emitted as integer `ts`/`dur` fields.
  Json ToChromeJson() const;
  // Flat per-name table sorted by self time, top `top_n` rows (0 = all).
  std::string TextReport(size_t top_n = 0) const;

 private:
  Tracer() { ring_.reserve(kDefaultCapacity); }

  static constexpr size_t kDefaultCapacity = 1 << 16;

  struct OpenSpan {
    std::string name;
    uint64_t start_ns = 0;
    uint64_t seq = 0;
    uint64_t child_ns = 0;
  };

  void Push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  const VirtualClock* clock_ = nullptr;
  std::vector<OpenSpan> stack_;
  std::vector<TraceEvent> ring_;  // circular once size() == capacity_
  size_t capacity_ = kDefaultCapacity;
  size_t next_slot_ = 0;
  uint64_t dropped_ = 0;
  uint64_t seq_ = 0;
  std::map<std::string, SpanStats> stats_;
};

// RAII span. Captures the enabled flag at construction so a toggle mid-span
// cannot unbalance the tracer's stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(Tracer::Instance().enabled()) {
    if (active_) {
      Tracer::Instance().BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Instance().EndSpan();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_TRACE_H_
