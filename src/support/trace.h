// Deterministic hierarchical span tracing for the extract→query→render
// pipeline.
//
// Spans are stamped with *virtual* time (the debugger target's VirtualClock,
// the same clock Table 4 reports) plus a monotonic sequence number, never with
// wall-clock time — so two identical runs produce byte-identical traces, in
// the spirit of rr's deterministic event recording. Completed spans land in a
// bounded ring buffer (oldest evicted first); per-name aggregates (count,
// total, self time) are kept separately and never evicted, which is what the
// `vprof` self-time breakdown and the text report consume.
//
// The fast path when tracing is off is a single relaxed atomic flag load:
//
//   if (tracer->enabled()) { ...slow path... }
//
// Self time is computed at record time: every open span accumulates the
// duration of its direct children, and EndSpan charges `dur - children` to the
// span's own name. Summed over all spans, self times exactly partition the
// root spans' durations — which is how `vprof` reconciles its breakdown
// against Target::clock() to the nanosecond.

#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/support/json.h"
#include "src/support/vclock.h"

namespace vl {

// One completed span, as stored in the ring buffer.
struct TraceEvent {
  std::string name;
  uint64_t ts_ns = 0;    // virtual time at span begin
  uint64_t dur_ns = 0;   // virtual duration
  uint64_t self_ns = 0;  // dur_ns minus direct children
  uint64_t seq = 0;      // sequence number assigned at begin (total order)
  int depth = 0;         // nesting depth at begin (0 = root)
  std::vector<std::pair<std::string, int64_t>> args;
};

// Per-name aggregate, never evicted.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
};

// One node of the calling-context tree built in tree mode: spans with the
// same name under the same ancestor path merge into one node, so the tree
// stays bounded no matter how many reads a refresh issues. `args` holds the
// node's own annotation sums (e.g. cache.hit_bytes); serialization rolls
// descendants' args up so every node carries its subtree's bytes and
// hit/miss split.
struct TreeNode {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
  std::map<std::string, int64_t> args;
  std::map<std::string, TreeNode> children;
};

class Tracer {
 public:
  static Tracer& Instance();

  // --- control ---
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // The raw flag, for instrumentation sites that cache a pointer to avoid the
  // function-local-static guard on every check (the Target read fast path).
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // The time source: the active debugger target's virtual clock. Registered
  // by Target's constructor (last target created wins), cleared by its
  // destructor. With no clock, timestamps read 0 and only sequence numbers
  // order events.
  void SetClock(const VirtualClock* clock) { clock_ = clock; }
  void ClearClockIf(const VirtualClock* clock) {
    if (clock_ == clock) {
      clock_ = nullptr;
    }
  }
  const VirtualClock* clock() const { return clock_; }
  uint64_t NowNanos() const { return clock_ != nullptr ? clock_->nanos() : 0; }

  // --- recording ---
  void BeginSpan(std::string name);
  void EndSpan();
  // Records an already-timed leaf span (e.g. one dbg.read, whose duration is
  // the charge it put on the clock). Attributed as a child of the open span.
  void CompleteEvent(std::string name, uint64_t ts_ns, uint64_t dur_ns,
                     std::vector<std::pair<std::string, int64_t>> args = {});
  // Accumulates `delta` into the innermost open span's `key` argument (a
  // no-op with no open span). ReadSession uses this to attribute cache
  // hit/miss bytes to whatever the pipeline was doing at the time.
  void Annotate(const char* key, int64_t delta);

  // Drops all events, aggregates, open spans, and the attribution tree;
  // resets the sequence counter. Does not touch the enabled flag, the clock
  // registration, or tree mode.
  void Clear();
  // Resizes the ring. The newest min(buffered, capacity) events survive in
  // order; events shed by a shrink count toward dropped().
  void SetCapacity(size_t capacity);

  // --- attribution tree (vexplain) ---
  // While tree mode is on, every recorded span/leaf also merges into a
  // calling-context tree keyed by the span-name path. Enabling resets the
  // tree; disabling freezes it for inspection. Toggle only while no spans
  // are open (e.g. right after Clear()) or paths will misattribute.
  void SetTreeEnabled(bool on);
  bool tree_enabled() const { return tree_enabled_; }
  const TreeNode& tree_root() const { return tree_root_; }
  // Deterministic serializations of the tree. Each node carries count,
  // total_ns, self_ns, and rolled-up annotation args (own + descendants);
  // children are keyed by span name in sorted order.
  Json TreeToJson() const;
  // Indented text rendering, children sorted by total time (desc) then name.
  std::string TreeText() const;

  // --- inspection ---
  size_t open_spans() const { return stack_.size(); }
  uint64_t dropped() const { return dropped_; }
  uint64_t recorded() const { return seq_; }
  // Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  const std::map<std::string, SpanStats>& stats() const { return stats_; }
  // Sum of self times across all completed spans == sum of root durations.
  uint64_t TotalSelfNanos() const;

  // --- exporters ---
  // Chrome trace_event JSON (chrome://tracing / Perfetto). Timestamps are
  // virtual nanoseconds emitted as integer `ts`/`dur` fields.
  Json ToChromeJson() const;
  // Flat per-name table sorted by self time, top `top_n` rows (0 = all).
  std::string TextReport(size_t top_n = 0) const;
  // Folded-stack flamegraph lines ("root;child;leaf self_ns\n", sorted) from
  // the buffered ring. Stacks are reconstructed from begin order + depth;
  // ancestors evicted from the ring appear as "?" frames.
  std::string ToFolded() const;

 private:
  Tracer() { ring_.reserve(kDefaultCapacity); }

  static constexpr size_t kDefaultCapacity = 1 << 16;

  struct OpenSpan {
    std::string name;
    uint64_t start_ns = 0;
    uint64_t seq = 0;
    uint64_t child_ns = 0;
    std::map<std::string, int64_t> args;  // Annotate() accumulations
  };

  void Push(TraceEvent event);
  void ResetTree();

  std::atomic<bool> enabled_{false};
  const VirtualClock* clock_ = nullptr;
  std::vector<OpenSpan> stack_;
  std::vector<TraceEvent> ring_;  // circular once size() == capacity_
  size_t capacity_ = kDefaultCapacity;
  size_t next_slot_ = 0;
  uint64_t dropped_ = 0;
  uint64_t seq_ = 0;
  std::map<std::string, SpanStats> stats_;
  bool tree_enabled_ = false;
  TreeNode tree_root_;
  // Mirrors stack_ while tree mode is on; front is always &tree_root_.
  // Map nodes are address-stable, so raw pointers stay valid as siblings
  // are inserted.
  std::vector<TreeNode*> tree_stack_;
};

// RAII span. Captures the enabled flag at construction so a toggle mid-span
// cannot unbalance the tracer's stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(Tracer::Instance().enabled()) {
    if (active_) {
      Tracer::Instance().BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Instance().EndSpan();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

// RAII span with a computed name (e.g. "viewcl.box.task_struct"). Callers
// should gate construction on Tracer::enabled() so the name string is never
// built when tracing is off.
class ScopedNamedSpan {
 public:
  explicit ScopedNamedSpan(std::string name) : active_(Tracer::Instance().enabled()) {
    if (active_) {
      Tracer::Instance().BeginSpan(std::move(name));
    }
  }
  ~ScopedNamedSpan() {
    if (active_) {
      Tracer::Instance().EndSpan();
    }
  }
  ScopedNamedSpan(const ScopedNamedSpan&) = delete;
  ScopedNamedSpan& operator=(const ScopedNamedSpan&) = delete;

 private:
  bool active_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_TRACE_H_
