// Deterministic pseudo-random number generation for the synthetic workload.
//
// All randomness in the repository flows through SplitMix64 so every run of the
// kernel simulator, the examples, and the benchmarks is bit-for-bit
// reproducible for a given seed.

#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace vl {

// SplitMix64 (Steele, Lea, Flood 2014). Tiny state, excellent mixing, and —
// unlike std::mt19937 — a stable cross-platform output sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound == 0 yields 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Bernoulli trial with probability numer/denom.
  bool NextChance(uint64_t numer, uint64_t denom) { return NextBelow(denom) < numer; }

 private:
  uint64_t state_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_RNG_H_
