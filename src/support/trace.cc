#include "src/support/trace.h"

#include <algorithm>

#include "src/support/str.h"

namespace vl {

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::BeginSpan(std::string name) {
  OpenSpan span;
  span.name = std::move(name);
  span.start_ns = NowNanos();
  span.seq = seq_++;
  stack_.push_back(std::move(span));
}

void Tracer::EndSpan() {
  if (stack_.empty()) {
    return;  // unbalanced EndSpan; tolerate rather than crash the debugger
  }
  OpenSpan span = std::move(stack_.back());
  stack_.pop_back();
  uint64_t end_ns = NowNanos();
  uint64_t dur = end_ns - span.start_ns;
  uint64_t self = dur - std::min(dur, span.child_ns);
  if (!stack_.empty()) {
    stack_.back().child_ns += dur;
  }
  seq_++;  // end transitions count toward the total order too
  SpanStats& agg = stats_[span.name];
  agg.count++;
  agg.total_ns += dur;
  agg.self_ns += self;

  TraceEvent event;
  event.ts_ns = span.start_ns;
  event.dur_ns = dur;
  event.self_ns = self;
  event.seq = span.seq;
  event.depth = static_cast<int>(stack_.size());
  event.name = std::move(span.name);
  Push(std::move(event));
}

void Tracer::CompleteEvent(std::string name, uint64_t ts_ns, uint64_t dur_ns,
                           std::vector<std::pair<std::string, int64_t>> args) {
  if (!stack_.empty()) {
    stack_.back().child_ns += dur_ns;
  }
  SpanStats& agg = stats_[name];
  agg.count++;
  agg.total_ns += dur_ns;
  agg.self_ns += dur_ns;  // leaves have no children

  TraceEvent event;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.self_ns = dur_ns;
  event.seq = seq_++;
  event.depth = static_cast<int>(stack_.size());
  event.name = std::move(name);
  event.args = std::move(args);
  Push(std::move(event));
}

void Tracer::Push(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_slot_] = std::move(event);
  next_slot_ = (next_slot_ + 1) % capacity_;
  dropped_++;
}

void Tracer::Clear() {
  stack_.clear();
  ring_.clear();
  next_slot_ = 0;
  dropped_ = 0;
  seq_ = 0;
  stats_.clear();
}

void Tracer::SetCapacity(size_t capacity) {
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  next_slot_ = 0;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_slot_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t Tracer::TotalSelfNanos() const {
  uint64_t total = 0;
  for (const auto& [name, agg] : stats_) {
    total += agg.self_ns;
  }
  return total;
}

Json Tracer::ToChromeJson() const {
  Json root = Json::Object();
  Json events = Json::Array();
  for (const TraceEvent& event : Snapshot()) {
    Json e = Json::Object();
    e["name"] = Json::Str(event.name);
    e["cat"] = Json::Str("vtrace");
    e["ph"] = Json::Str("X");
    e["ts"] = Json::Int(static_cast<int64_t>(event.ts_ns));
    e["dur"] = Json::Int(static_cast<int64_t>(event.dur_ns));
    e["pid"] = Json::Int(1);
    e["tid"] = Json::Int(1);
    Json args = Json::Object();
    args["seq"] = Json::Int(static_cast<int64_t>(event.seq));
    args["depth"] = Json::Int(event.depth);
    args["self_ns"] = Json::Int(static_cast<int64_t>(event.self_ns));
    for (const auto& [key, value] : event.args) {
      args[key] = Json::Int(value);
    }
    e["args"] = std::move(args);
    events.Append(std::move(e));
  }
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = Json::Str("ns");
  Json meta = Json::Object();
  meta["clock"] = Json::Str("virtual");
  meta["dropped"] = Json::Int(static_cast<int64_t>(dropped_));
  root["metadata"] = std::move(meta);
  return root;
}

std::string Tracer::TextReport(size_t top_n) const {
  // Sort by self time (desc), then name for a deterministic total order.
  std::vector<std::pair<std::string, SpanStats>> rows(stats_.begin(), stats_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) {
      return a.second.self_ns > b.second.self_ns;
    }
    return a.first < b.first;
  });
  if (top_n > 0 && rows.size() > top_n) {
    rows.resize(top_n);
  }
  uint64_t total_self = TotalSelfNanos();
  std::string out = StrFormat("%-28s %10s %14s %14s %7s\n", "span", "count", "total ms",
                              "self ms", "self%");
  for (const auto& [name, agg] : rows) {
    double pct = total_self > 0
                     ? 100.0 * static_cast<double>(agg.self_ns) / static_cast<double>(total_self)
                     : 0.0;
    out += StrFormat("%-28s %10llu %14.3f %14.3f %6.1f%%\n", name.c_str(),
                     static_cast<unsigned long long>(agg.count),
                     static_cast<double>(agg.total_ns) / 1e6,
                     static_cast<double>(agg.self_ns) / 1e6, pct);
  }
  out += StrFormat("%-28s %10s %14s %14.3f %6.1f%%\n", "(total self)", "", "",
                   static_cast<double>(total_self) / 1e6, total_self > 0 ? 100.0 : 0.0);
  return out;
}

}  // namespace vl
