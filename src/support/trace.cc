#include "src/support/trace.h"

#include <algorithm>

#include "src/support/str.h"

namespace vl {

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::BeginSpan(std::string name) {
  if (tree_enabled_) {
    if (tree_stack_.empty()) {
      tree_stack_.push_back(&tree_root_);
    }
    tree_stack_.push_back(&tree_stack_.back()->children[name]);
  }
  OpenSpan span;
  span.name = std::move(name);
  span.start_ns = NowNanos();
  span.seq = seq_++;
  stack_.push_back(std::move(span));
}

void Tracer::EndSpan() {
  if (stack_.empty()) {
    return;  // unbalanced EndSpan; tolerate rather than crash the debugger
  }
  OpenSpan span = std::move(stack_.back());
  stack_.pop_back();
  uint64_t end_ns = NowNanos();
  uint64_t dur = end_ns - span.start_ns;
  uint64_t self = dur - std::min(dur, span.child_ns);
  if (!stack_.empty()) {
    stack_.back().child_ns += dur;
  }
  seq_++;  // end transitions count toward the total order too
  SpanStats& agg = stats_[span.name];
  agg.count++;
  agg.total_ns += dur;
  agg.self_ns += self;

  if (tree_enabled_ && tree_stack_.size() > 1) {
    TreeNode* node = tree_stack_.back();
    tree_stack_.pop_back();
    node->count++;
    node->total_ns += dur;
    node->self_ns += self;
    for (const auto& [key, value] : span.args) {
      node->args[key] += value;
    }
  }

  TraceEvent event;
  event.ts_ns = span.start_ns;
  event.dur_ns = dur;
  event.self_ns = self;
  event.seq = span.seq;
  event.depth = static_cast<int>(stack_.size());
  event.name = std::move(span.name);
  event.args.assign(span.args.begin(), span.args.end());
  Push(std::move(event));
}

void Tracer::CompleteEvent(std::string name, uint64_t ts_ns, uint64_t dur_ns,
                           std::vector<std::pair<std::string, int64_t>> args) {
  if (!stack_.empty()) {
    stack_.back().child_ns += dur_ns;
  }
  SpanStats& agg = stats_[name];
  agg.count++;
  agg.total_ns += dur_ns;
  agg.self_ns += dur_ns;  // leaves have no children

  if (tree_enabled_) {
    if (tree_stack_.empty()) {
      tree_stack_.push_back(&tree_root_);
    }
    TreeNode& node = tree_stack_.back()->children[name];
    node.count++;
    node.total_ns += dur_ns;
    node.self_ns += dur_ns;
    for (const auto& [key, value] : args) {
      node.args[key] += value;
    }
  }

  TraceEvent event;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.self_ns = dur_ns;
  event.seq = seq_++;
  event.depth = static_cast<int>(stack_.size());
  event.name = std::move(name);
  event.args = std::move(args);
  Push(std::move(event));
}

void Tracer::Annotate(const char* key, int64_t delta) {
  if (stack_.empty()) {
    return;
  }
  stack_.back().args[key] += delta;
}

void Tracer::Push(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_slot_] = std::move(event);
  next_slot_ = (next_slot_ + 1) % capacity_;
  dropped_++;
}

void Tracer::Clear() {
  stack_.clear();
  ring_.clear();
  next_slot_ = 0;
  dropped_ = 0;
  seq_ = 0;
  stats_.clear();
  ResetTree();
}

void Tracer::SetCapacity(size_t capacity) {
  capacity_ = std::max<size_t>(1, capacity);
  // Keep the newest events. Snapshot() yields oldest-first, so a shrink sheds
  // from the front; everything shed was recorded but is no longer
  // retrievable, which is exactly what dropped() counts.
  std::vector<TraceEvent> kept = Snapshot();
  if (kept.size() > capacity_) {
    dropped_ += kept.size() - capacity_;
    kept.erase(kept.begin(),
               kept.begin() + static_cast<ptrdiff_t>(kept.size() - capacity_));
  }
  ring_ = std::move(kept);
  // ring_ is now in oldest-first order, so slot 0 is the eviction point once
  // it fills back up to capacity.
  next_slot_ = 0;
}

void Tracer::ResetTree() {
  tree_root_ = TreeNode{};
  tree_stack_.clear();
  if (tree_enabled_) {
    tree_stack_.push_back(&tree_root_);
  }
}

void Tracer::SetTreeEnabled(bool on) {
  tree_enabled_ = on;
  if (on) {
    ResetTree();
  } else {
    tree_stack_.clear();  // freeze the tree; tree_root_ stays inspectable
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_slot_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t Tracer::TotalSelfNanos() const {
  uint64_t total = 0;
  for (const auto& [name, agg] : stats_) {
    total += agg.self_ns;
  }
  return total;
}

Json Tracer::ToChromeJson() const {
  Json root = Json::Object();
  Json events = Json::Array();
  for (const TraceEvent& event : Snapshot()) {
    Json e = Json::Object();
    e["name"] = Json::Str(event.name);
    e["cat"] = Json::Str("vtrace");
    e["ph"] = Json::Str("X");
    e["ts"] = Json::Int(static_cast<int64_t>(event.ts_ns));
    e["dur"] = Json::Int(static_cast<int64_t>(event.dur_ns));
    e["pid"] = Json::Int(1);
    e["tid"] = Json::Int(1);
    Json args = Json::Object();
    args["seq"] = Json::Int(static_cast<int64_t>(event.seq));
    args["depth"] = Json::Int(event.depth);
    args["self_ns"] = Json::Int(static_cast<int64_t>(event.self_ns));
    for (const auto& [key, value] : event.args) {
      args[key] = Json::Int(value);
    }
    e["args"] = std::move(args);
    events.Append(std::move(e));
  }
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = Json::Str("ns");
  Json meta = Json::Object();
  meta["clock"] = Json::Str("virtual");
  meta["dropped"] = Json::Int(static_cast<int64_t>(dropped_));
  root["metadata"] = std::move(meta);
  return root;
}

namespace {

// Annotation args rolled up over the whole subtree (own + descendants), so a
// box node reports the read bytes and cache hit/miss split of everything
// instantiated under it.
std::map<std::string, int64_t> RollupArgs(const TreeNode& node) {
  std::map<std::string, int64_t> out = node.args;
  for (const auto& [name, child] : node.children) {
    for (const auto& [key, value] : RollupArgs(child)) {
      out[key] += value;
    }
  }
  return out;
}

Json TreeNodeToJson(const TreeNode& node) {
  Json j = Json::Object();
  j["count"] = Json::Int(static_cast<int64_t>(node.count));
  j["total_ns"] = Json::Int(static_cast<int64_t>(node.total_ns));
  j["self_ns"] = Json::Int(static_cast<int64_t>(node.self_ns));
  std::map<std::string, int64_t> args = RollupArgs(node);
  if (!args.empty()) {
    Json jargs = Json::Object();
    for (const auto& [key, value] : args) {
      jargs[key] = Json::Int(value);
    }
    j["args"] = std::move(jargs);
  }
  if (!node.children.empty()) {
    Json children = Json::Object();
    for (const auto& [name, child] : node.children) {
      children[name] = TreeNodeToJson(child);
    }
    j["children"] = std::move(children);
  }
  return j;
}

void TreeNodeToText(const std::string& name, const TreeNode& node, int depth,
                    std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += name;
  if (line.size() < 40) {
    line.append(40 - line.size(), ' ');
  }
  *out += line;
  *out += StrFormat(" x%-6llu total %12llu ns  self %12llu ns",
                    static_cast<unsigned long long>(node.count),
                    static_cast<unsigned long long>(node.total_ns),
                    static_cast<unsigned long long>(node.self_ns));
  for (const auto& [key, value] : RollupArgs(node)) {
    *out += StrFormat("  %s=%lld", key.c_str(), static_cast<long long>(value));
  }
  *out += "\n";
  // Children by total time (desc), then name, for a deterministic order.
  std::vector<const std::pair<const std::string, TreeNode>*> kids;
  for (const auto& entry : node.children) {
    kids.push_back(&entry);
  }
  std::sort(kids.begin(), kids.end(), [](const auto* a, const auto* b) {
    if (a->second.total_ns != b->second.total_ns) {
      return a->second.total_ns > b->second.total_ns;
    }
    return a->first < b->first;
  });
  for (const auto* kid : kids) {
    TreeNodeToText(kid->first, kid->second, depth + 1, out);
  }
}

}  // namespace

Json Tracer::TreeToJson() const {
  Json root = Json::Object();
  uint64_t total = 0;
  for (const auto& [name, child] : tree_root_.children) {
    total += child.total_ns;
  }
  root["total_ns"] = Json::Int(static_cast<int64_t>(total));
  Json children = Json::Object();
  for (const auto& [name, child] : tree_root_.children) {
    children[name] = TreeNodeToJson(child);
  }
  root["children"] = std::move(children);
  return root;
}

std::string Tracer::TreeText() const {
  std::string out;
  std::vector<const std::pair<const std::string, TreeNode>*> roots;
  for (const auto& entry : tree_root_.children) {
    roots.push_back(&entry);
  }
  std::sort(roots.begin(), roots.end(), [](const auto* a, const auto* b) {
    if (a->second.total_ns != b->second.total_ns) {
      return a->second.total_ns > b->second.total_ns;
    }
    return a->first < b->first;
  });
  for (const auto* root : roots) {
    TreeNodeToText(root->first, root->second, 0, &out);
  }
  return out;
}

std::string Tracer::ToFolded() const {
  std::vector<TraceEvent> events = Snapshot();
  // Events sorted by begin seq replay the nesting structure: an event at
  // depth d is a child of the most recent event seen at depth d-1.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  std::map<std::string, uint64_t> folded;
  std::vector<std::string> stack;
  for (const TraceEvent& event : events) {
    size_t depth = event.depth < 0 ? 0 : static_cast<size_t>(event.depth);
    if (stack.size() > depth) {
      stack.resize(depth);
    }
    while (stack.size() < depth) {
      stack.push_back("?");  // ancestor evicted from the ring
    }
    stack.push_back(event.name);
    if (event.self_ns > 0) {
      std::string path;
      for (size_t i = 0; i < stack.size(); ++i) {
        if (i > 0) {
          path += ';';
        }
        path += stack[i];
      }
      folded[path] += event.self_ns;
    }
  }
  std::string out;
  for (const auto& [path, self_ns] : folded) {
    out += path;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(self_ns));
  }
  return out;
}

std::string Tracer::TextReport(size_t top_n) const {
  // Sort by self time (desc), then name for a deterministic total order.
  std::vector<std::pair<std::string, SpanStats>> rows(stats_.begin(), stats_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) {
      return a.second.self_ns > b.second.self_ns;
    }
    return a.first < b.first;
  });
  if (top_n > 0 && rows.size() > top_n) {
    rows.resize(top_n);
  }
  uint64_t total_self = TotalSelfNanos();
  std::string out = StrFormat("%-28s %10s %14s %14s %7s\n", "span", "count", "total ms",
                              "self ms", "self%");
  for (const auto& [name, agg] : rows) {
    double pct = total_self > 0
                     ? 100.0 * static_cast<double>(agg.self_ns) / static_cast<double>(total_self)
                     : 0.0;
    out += StrFormat("%-28s %10llu %14.3f %14.3f %6.1f%%\n", name.c_str(),
                     static_cast<unsigned long long>(agg.count),
                     static_cast<double>(agg.total_ns) / 1e6,
                     static_cast<double>(agg.self_ns) / 1e6, pct);
  }
  out += StrFormat("%-28s %10s %14s %14.3f %6.1f%%\n", "(total self)", "", "",
                   static_cast<double>(total_self) / 1e6, total_self > 0 ? 100.0 : 0.0);
  return out;
}

}  // namespace vl
