#include "src/support/metrics.h"

#include "src/support/str.h"

namespace vl {

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

void MetricsRegistry::ResetPrefix(std::string_view prefix) {
  auto starts_with = [prefix](const std::string& name) {
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
  };
  for (auto& [name, counter] : counters_) {
    if (starts_with(name)) {
      counter.Reset();
    }
  }
  for (auto& [name, gauge] : gauges_) {
    if (starts_with(name)) {
      gauge.Reset();
    }
  }
  for (auto& [name, histogram] : histograms_) {
    if (starts_with(name)) {
      histogram.Reset();
    }
  }
}

Json MetricsRegistry::ToJson() const {
  Json root = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json::Int(static_cast<int64_t>(counter.value()));
  }
  root["counters"] = std::move(counters);
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json::Int(gauge.value());
  }
  root["gauges"] = std::move(gauges);
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    Json h = Json::Object();
    h["count"] = Json::Int(static_cast<int64_t>(histogram.count()));
    h["sum"] = Json::Int(static_cast<int64_t>(histogram.sum()));
    h["min"] = Json::Int(static_cast<int64_t>(histogram.min()));
    h["max"] = Json::Int(static_cast<int64_t>(histogram.max()));
    Json buckets = Json::Array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.bucket(i) == 0) {
        continue;
      }
      Json pair = Json::Array();
      pair.Append(Json::Int(static_cast<int64_t>(Histogram::BucketUpperEdge(i))));
      pair.Append(Json::Int(static_cast<int64_t>(histogram.bucket(i))));
      buckets.Append(std::move(pair));
    }
    h["buckets"] = std::move(buckets);
    histograms[name] = std::move(h);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

std::string MetricsRegistry::TextReport() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    if (counter.value() == 0) {
      continue;
    }
    out += StrFormat("counter   %-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    if (gauge.value() == 0) {
      continue;
    }
    out += StrFormat("gauge     %-36s %lld\n", name.c_str(),
                     static_cast<long long>(gauge.value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    if (histogram.count() == 0) {
      continue;
    }
    out += StrFormat("histogram %-36s count=%llu mean=%.1f min=%llu max=%llu\n",
                     name.c_str(), static_cast<unsigned long long>(histogram.count()),
                     histogram.mean(), static_cast<unsigned long long>(histogram.min()),
                     static_cast<unsigned long long>(histogram.max()));
  }
  return out;
}

}  // namespace vl
