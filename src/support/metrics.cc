#include "src/support/metrics.h"

#include "src/support/str.h"

namespace vl {

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

double Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // 0-based fractional rank of the requested quantile.
  double rank = q * static_cast<double>(count_ - 1);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t c = buckets_[i];
    if (c == 0) {
      continue;
    }
    if (rank < static_cast<double>(seen + c)) {
      double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
      double hi = static_cast<double>(BucketUpperEdge(i));
      double pos = c > 1 ? (rank - static_cast<double>(seen)) / static_cast<double>(c - 1)
                         : 0.0;
      double v = lo + pos * (hi - lo);
      if (v < static_cast<double>(min_)) {
        v = static_cast<double>(min_);
      }
      if (v > static_cast<double>(max_)) {
        v = static_cast<double>(max_);
      }
      return v;
    }
    seen += c;
  }
  return static_cast<double>(max_);
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

void MetricsRegistry::ResetPrefix(std::string_view prefix) {
  auto starts_with = [prefix](const std::string& name) {
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
  };
  for (auto& [name, counter] : counters_) {
    if (starts_with(name)) {
      counter.Reset();
    }
  }
  for (auto& [name, gauge] : gauges_) {
    if (starts_with(name)) {
      gauge.Reset();
    }
  }
  for (auto& [name, histogram] : histograms_) {
    if (starts_with(name)) {
      histogram.Reset();
    }
  }
}

Json Histogram::ToJson() const {
  Json h = Json::Object();
  h["count"] = Json::Int(static_cast<int64_t>(count()));
  h["sum"] = Json::Int(static_cast<int64_t>(sum()));
  h["min"] = Json::Int(static_cast<int64_t>(min()));
  h["max"] = Json::Int(static_cast<int64_t>(max()));
  h["p50"] = Json::Number(ApproxQuantile(0.50));
  h["p90"] = Json::Number(ApproxQuantile(0.90));
  h["p99"] = Json::Number(ApproxQuantile(0.99));
  Json buckets = Json::Array();
  for (int i = 0; i < kBuckets; ++i) {
    if (bucket(i) == 0) {
      continue;
    }
    Json pair = Json::Array();
    pair.Append(Json::Int(static_cast<int64_t>(BucketUpperEdge(i))));
    pair.Append(Json::Int(static_cast<int64_t>(bucket(i))));
    buckets.Append(std::move(pair));
  }
  h["buckets"] = std::move(buckets);
  return h;
}

Json MetricsRegistry::ToJson() const {
  Json root = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json::Int(static_cast<int64_t>(counter.value()));
  }
  root["counters"] = std::move(counters);
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json::Int(gauge.value());
  }
  root["gauges"] = std::move(gauges);
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram.ToJson();
  }
  root["histograms"] = std::move(histograms);
  return root;
}

std::string MetricsRegistry::TextReport() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    if (counter.value() == 0) {
      continue;
    }
    out += StrFormat("counter   %-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    if (gauge.value() == 0) {
      continue;
    }
    out += StrFormat("gauge     %-36s %lld\n", name.c_str(),
                     static_cast<long long>(gauge.value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    if (histogram.count() == 0) {
      continue;
    }
    out += StrFormat(
        "histogram %-36s count=%llu mean=%.1f min=%llu max=%llu "
        "p50=%.1f p90=%.1f p99=%.1f\n",
        name.c_str(), static_cast<unsigned long long>(histogram.count()),
        histogram.mean(), static_cast<unsigned long long>(histogram.min()),
        static_cast<unsigned long long>(histogram.max()), histogram.ApproxQuantile(0.50),
        histogram.ApproxQuantile(0.90), histogram.ApproxQuantile(0.99));
  }
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (our dots)
// becomes '_'. A leading digit gets an extra '_' (cannot happen with the
// "vl_" prefix, but keep the sanitizer total).
std::string PromName(const std::string& name) {
  std::string out = "vl_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string prom = PromName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += StrFormat("%s %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += StrFormat("%s %lld\n", prom.c_str(), static_cast<long long>(gauge.value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative `le` buckets over our inclusive log2 upper edges; empty
    // buckets are elided (a sparse but valid exposition) and `+Inf` always
    // closes the series at the total count.
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.bucket(i) == 0) {
        continue;
      }
      cumulative += histogram.bucket(i);
      out += StrFormat("%s_bucket{le=\"%llu\"} %llu\n", prom.c_str(),
                       static_cast<unsigned long long>(Histogram::BucketUpperEdge(i)),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(histogram.count()));
    out += StrFormat("%s_sum %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(histogram.sum()));
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(histogram.count()));
  }
  return out;
}

}  // namespace vl
