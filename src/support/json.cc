#include "src/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/support/str.h"

namespace vl {

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      if (num_ == std::floor(num_) && std::abs(num_) < 9.0e15) {
        *out += StrFormat("%lld", static_cast<long long>(num_));
      } else {
        *out += StrFormat("%.17g", num_);
      }
      return;
    }
    case Kind::kString:
      *out += "\"" + JsonEscape(str_) + "\"";
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) {
          *out += ",";
        }
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) {
          *out += ",";
        }
        first = false;
        newline(depth + 1);
        *out += "\"" + JsonEscape(key) + "\":";
        if (indent >= 0) {
          *out += " ";
        }
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += "}";
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<Json> Run() {
    VL_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return ParseError("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return ParseError("unexpected end of JSON");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      VL_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Json::Null();
    }
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Json::Bool(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Json::Bool(false);
    }
    return ParseNumber();
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      return ParseError(StrFormat("bad JSON value at offset %zu", pos_));
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return ParseError("bad JSON number '" + token + "'");
    }
    return Json::Number(value);
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return ParseError("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = static_cast<char>(
                  std::tolower(static_cast<unsigned char>(text_[pos_ + i])));
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else {
                return ParseError("bad \\u escape digit");
              }
            }
            pos_ += 4;
            // UTF-8 encode (BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return ParseError("unknown escape in JSON string");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      return ParseError("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json out = Json::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      VL_ASSIGN_OR_RETURN(Json value, ParseValue());
      out.Append(std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return out;
      }
      return ParseError("expected ',' or ']' in JSON array");
    }
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json out = Json::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return ParseError("expected a key string in JSON object");
      }
      VL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return ParseError("expected ':' in JSON object");
      }
      ++pos_;
      VL_ASSIGN_OR_RETURN(Json value, ParseValue());
      out[key] = std::move(value);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return out;
      }
      return ParseError("expected ',' or '}' in JSON object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) { return JsonParser(text).Run(); }

}  // namespace vl
