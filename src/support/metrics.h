// Typed process-wide metrics: counters, gauges, and log2-bucketed histograms.
//
// Metrics complement the span tracer (trace.h) with cheap scalar aggregates
// that survive ring-buffer eviction: per-struct-type read counters, read-size
// and latency distributions, and graph-build totals. Everything is
// deterministic — values derive from virtual-clock charges and object counts,
// never from wall-clock time — so two identical runs report identical metrics.
//
// Updates are gated by the tracer's enabled flag at the instrumentation sites,
// not here; the registry itself is always usable.

#ifndef SRC_SUPPORT_METRICS_H_
#define SRC_SUPPORT_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/support/json.h"

namespace vl {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Power-of-two bucketed histogram. Bucket 0 holds the value 0; bucket i
// (1 <= i <= 64) holds values in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  // The bucket index a value falls into.
  static int BucketOf(uint64_t value) {
    int bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits;
  }
  // Inclusive upper edge of bucket i: 0, 1, 3, 7, 15, ...
  static uint64_t BucketUpperEdge(int bucket) {
    if (bucket <= 0) {
      return 0;
    }
    if (bucket >= 64) {
      return ~0ull;
    }
    return (1ull << bucket) - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketOf(value)]++;
    count_++;
    sum_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t bucket(int i) const { return buckets_[i]; }
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0; }

  // Approximate quantile (q in [0, 1]) by linear interpolation inside the
  // log2 bucket holding the q-th rank, clamped to the observed [min, max].
  // Exact when the bucket holds one distinct value; otherwise within the
  // bucket's span (a factor of 2).
  double ApproxQuantile(double q) const;

  // {"count", "sum", "min", "max", "p50", "p90", "p99",
  //  "buckets": [[upper_edge, count], ...]} — the shape MetricsRegistry uses
  // for registered histograms, also available to free-standing ones (vflight's
  // queue/service decomposition).
  Json ToJson() const;

  void Reset() {
    for (uint64_t& b : buckets_) {
      b = 0;
    }
    count_ = sum_ = min_ = max_ = 0;
  }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Name -> metric maps with deterministic (sorted) iteration order.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) { return &histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Zeroes every metric (names persist so pointers stay valid).
  void Reset();
  // Zeroes every metric whose name starts with prefix (e.g. "dbg.read").
  void ResetPrefix(std::string_view prefix);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // min, max, p50, p90, p99, buckets: [[upper_edge, count], ...]}}}
  Json ToJson() const;

  // Human-readable dump, one metric per line, sorted by name.
  std::string TextReport() const;

  // Prometheus text exposition (version 0.0.4): counters as `vl_<name>_total`,
  // gauges as `vl_<name>`, histograms as `vl_<name>_bucket{le="..."}` with
  // cumulative buckets plus `_sum`/`_count`. Names are sanitized to
  // [a-zA-Z0-9_:]; output is deterministic (sorted by name).
  std::string ToPrometheus() const;

 private:
  MetricsRegistry() = default;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vl

#endif  // SRC_SUPPORT_METRICS_H_
