// String utilities shared by the DSL front-ends and the renderers.

#ifndef SRC_SUPPORT_STR_H_
#define SRC_SUPPORT_STR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vl {

// Splits on a single character; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Splits on a single character; empty pieces are dropped after trimming.
std::vector<std::string> StrSplitTrimmed(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

bool StrContains(std::string_view haystack, std::string_view needle);

// ASCII lowercase copy.
std::string StrLower(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Unsigned value rendered in the given base (2, 8, 10, 16); base 16/8/2 get a
// "0x"/"0"/"0b" prefix.
std::string FormatUnsigned(uint64_t value, int base);

// Renders "12.3 KiB"-style human sizes.
std::string FormatByteSize(uint64_t bytes);

// Replaces every occurrence of `from` with `to`.
std::string StrReplaceAll(std::string_view text, std::string_view from, std::string_view to);

// Escapes a string for inclusion in JSON or DOT output.
std::string JsonEscape(std::string_view text);

// True if `text` parses fully as a (possibly signed, possibly hex) integer.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace vl

#endif  // SRC_SUPPORT_STR_H_
