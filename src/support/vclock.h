// Virtual time accounting.
//
// Table 4 of the paper compares plotting cost on two debugger transports
// (localhost GDB-remote into QEMU vs. serial KGDB on a Raspberry Pi 400).
// Rather than requiring that hardware, the debugger target charges each memory
// access to a VirtualClock according to a latency model; benchmarks report the
// accumulated virtual nanoseconds. The clock is strictly additive and
// deterministic.

#ifndef SRC_SUPPORT_VCLOCK_H_
#define SRC_SUPPORT_VCLOCK_H_

#include <atomic>
#include <cstdint>

namespace vl {

// Single-writer clock: advances are serialized externally (one target owner,
// or the owning shard's extraction mutex in vserve), but nanos() may be read
// concurrently by stats snapshots. Relaxed load+store keeps the write path a
// plain add — no locked RMW on the hot Charge() path.
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock& other)
      : nanos_(other.nanos_.load(std::memory_order_relaxed)) {}
  VirtualClock& operator=(const VirtualClock& other) {
    nanos_.store(other.nanos_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  void AdvanceNanos(uint64_t nanos) {
    nanos_.store(nanos_.load(std::memory_order_relaxed) + nanos, std::memory_order_relaxed);
  }
  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

  uint64_t nanos() const { return nanos_.load(std::memory_order_relaxed); }
  double millis() const { return static_cast<double>(nanos()) / 1e6; }

 private:
  std::atomic<uint64_t> nanos_{0};
};

}  // namespace vl

#endif  // SRC_SUPPORT_VCLOCK_H_
