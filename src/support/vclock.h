// Virtual time accounting.
//
// Table 4 of the paper compares plotting cost on two debugger transports
// (localhost GDB-remote into QEMU vs. serial KGDB on a Raspberry Pi 400).
// Rather than requiring that hardware, the debugger target charges each memory
// access to a VirtualClock according to a latency model; benchmarks report the
// accumulated virtual nanoseconds. The clock is strictly additive and
// deterministic.

#ifndef SRC_SUPPORT_VCLOCK_H_
#define SRC_SUPPORT_VCLOCK_H_

#include <cstdint>

namespace vl {

class VirtualClock {
 public:
  VirtualClock() = default;

  void AdvanceNanos(uint64_t nanos) { nanos_ += nanos; }
  void Reset() { nanos_ = 0; }

  uint64_t nanos() const { return nanos_; }
  double millis() const { return static_cast<double>(nanos_) / 1e6; }

 private:
  uint64_t nanos_ = 0;
};

}  // namespace vl

#endif  // SRC_SUPPORT_VCLOCK_H_
