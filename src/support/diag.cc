#include "src/support/diag.h"

#include <algorithm>

#include "src/support/str.h"

namespace vl {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

Diagnostic& DiagnosticList::AddRule(std::string rule, Severity severity, Span span,
                                    std::string message) {
  Diagnostic d;
  d.rule = std::move(rule);
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  diags_.push_back(std::move(d));
  return diags_.back();
}

void DiagnosticList::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.span.offset != b.span.offset) {
      return a.span.offset < b.span.offset;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.message < b.message;
  });
}

size_t DiagnosticList::Count(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) {
      ++n;
    }
  }
  return n;
}

namespace {

// The 1-based source line containing `line` (without its trailing newline).
std::string_view SourceLine(std::string_view source, int line) {
  int current = 1;
  size_t start = 0;
  for (size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      if (current == line) {
        return source.substr(start, i - start);
      }
      ++current;
      start = i + 1;
    }
  }
  return {};
}

}  // namespace

std::string DiagnosticList::RenderText(std::string_view source, std::string_view name) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += StrFormat("%s:%d:%d: %s[%s]: %s\n", std::string(name).c_str(), d.span.line,
                     d.span.col, std::string(SeverityName(d.severity)).c_str(), d.rule.c_str(),
                     d.message.c_str());
    if (!d.span.valid()) {
      continue;
    }
    std::string_view text = SourceLine(source, d.span.line);
    std::string gutter = StrFormat("%4d", d.span.line);
    out += StrFormat("%s | %s\n", gutter.c_str(), std::string(text).c_str());
    // Caret line: expand tabs the same way (tabs copied through so columns
    // stay aligned in terminals).
    std::string underline;
    int col = d.span.col > 0 ? d.span.col : 1;
    for (int i = 1; i < col && static_cast<size_t>(i) <= text.size() + 1; ++i) {
      underline += text[static_cast<size_t>(i - 1)] == '\t' ? '\t' : ' ';
    }
    underline += '^';
    size_t tail = d.span.length > 0 ? d.span.length - 1 : 0;
    // Never underline past the end of the visible line.
    size_t remaining = text.size() > static_cast<size_t>(col) ? text.size() - col : 0;
    underline.append(std::min(tail, remaining), '~');
    out += StrFormat("     | %s\n", underline.c_str());
    if (d.has_fixit) {
      out += StrFormat("     | fix-it: replace with '%s'\n", d.fixit.replacement.c_str());
    }
  }
  out += StrFormat("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                   std::string(name).c_str(), errors(), warnings(), Count(Severity::kNote));
  return out;
}

namespace {

Json SpanJson(const Span& s) {
  Json j = Json::Object();
  j["line"] = Json::Int(s.line);
  j["col"] = Json::Int(s.col);
  j["offset"] = Json::Int(static_cast<int64_t>(s.offset));
  j["length"] = Json::Int(static_cast<int64_t>(s.length));
  return j;
}

}  // namespace

Json DiagnosticList::ToJson(std::string_view name) const {
  Json root = Json::Object();
  root["name"] = Json::Str(std::string(name));
  Json arr = Json::Array();
  for (const Diagnostic& d : diags_) {
    Json j = Json::Object();
    j["rule"] = Json::Str(d.rule);
    j["severity"] = Json::Str(std::string(SeverityName(d.severity)));
    j["span"] = SpanJson(d.span);
    j["message"] = Json::Str(d.message);
    if (d.has_fixit) {
      Json f = SpanJson(d.fixit.span);
      f["replacement"] = Json::Str(d.fixit.replacement);
      j["fixit"] = std::move(f);
    }
    arr.Append(std::move(j));
  }
  root["diagnostics"] = std::move(arr);
  root["errors"] = Json::Int(static_cast<int64_t>(errors()));
  root["warnings"] = Json::Int(static_cast<int64_t>(warnings()));
  root["notes"] = Json::Int(static_cast<int64_t>(Count(Severity::kNote)));
  return root;
}

std::string ApplyFixIts(std::string_view source, const std::vector<Diagnostic>& diags) {
  struct Patch {
    size_t offset;
    size_t length;
    const std::string* replacement;
  };
  std::vector<Patch> patches;
  for (const Diagnostic& d : diags) {
    if (d.has_fixit && d.fixit.span.offset + d.fixit.span.length <= source.size()) {
      patches.push_back({d.fixit.span.offset, d.fixit.span.length, &d.fixit.replacement});
    }
  }
  std::stable_sort(patches.begin(), patches.end(),
                   [](const Patch& a, const Patch& b) { return a.offset < b.offset; });
  std::string out;
  size_t cursor = 0;
  for (const Patch& p : patches) {
    if (p.offset < cursor) {
      continue;  // overlaps an already-applied patch
    }
    out.append(source.substr(cursor, p.offset - cursor));
    out.append(*p.replacement);
    cursor = p.offset + p.length;
  }
  out.append(source.substr(cursor));
  return out;
}

}  // namespace vl
