#include "src/support/str.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vl {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplitTrimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(text, sep)) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StrContains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string StrLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatUnsigned(uint64_t value, int base) {
  if (base == 10) {
    return std::to_string(value);
  }
  static const char kDigits[] = "0123456789abcdef";
  std::string digits;
  if (value == 0) {
    digits = "0";
  } else {
    while (value != 0) {
      digits.insert(digits.begin(), kDigits[value % static_cast<uint64_t>(base)]);
      value /= static_cast<uint64_t>(base);
    }
  }
  switch (base) {
    case 16:
      return "0x" + digits;
    case 8:
      return "0" + digits;
    case 2:
      return "0b" + digits;
    default:
      return digits;
  }
}

std::string FormatByteSize(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

std::string StrReplaceAll(std::string_view text, std::string_view from, std::string_view to) {
  std::string out;
  size_t start = 0;
  while (start < text.size()) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos || from.empty()) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StrTrim(text);
  if (text.empty()) {
    return false;
  }
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end == buf.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace vl
