// The panel-based interactive debugger (paper §2.4, Figure 2).
//
// Runs the v-command shell over a live simulated kernel. With --demo, a
// scripted session reproduces Figure 2's workflow: two primary panes (the
// process parenthood tree and the CFS scheduling tree), a "focus" search
// that finds the same task_struct in both, a secondary pane for the focused
// object, and a vchat refinement. Without --demo, a REPL reads v-commands
// from stdin.
//
//   $ ./interactive_debugger --demo
//   $ ./interactive_debugger            # type 'help' for commands
//   $ ./interactive_debugger --incremental   # delta cache invalidation on

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/support/str.h"
#include "src/vision/figures.h"
#include "src/vision/shell.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

void Run(vision::DebuggerShell& shell, const std::string& line) {
  std::printf("(vdb) %s\n%s\n", line.c_str(), shell.Execute(line).c_str());
}

int Demo(vision::DebuggerShell& shell, vkern::Kernel& kernel) {
  std::printf("--- scripted demo: the paper's Figure 2 workflow ---\n\n");

  // Pane 1: the process parenthood tree; pane 2: the CFS scheduling tree.
  Run(shell, std::string("vplot 1 ") + vision::FindFigure("fig3_4")->viewcl);
  Run(shell, "vctrl split 1 h");
  Run(shell, std::string("vplot 2 ") + vision::FindFigure("fig7_1")->viewcl);
  Run(shell, "vctrl layout");

  // Focus: find a queued task in BOTH structures.
  vkern::task_struct* queued = nullptr;
  kernel.sched().ForEachQueued(0, [&](vkern::task_struct* t) {
    if (queued == nullptr && t->pid > 1) {
      queued = t;
    }
  });
  if (queued == nullptr) {
    std::printf("no queued task to focus on\n");
    return 1;
  }
  std::printf("focusing on pid %d (%s), managed by the parent tree AND the run queue:\n\n",
              queued->pid, queued->comm);
  Run(shell, vl::StrFormat("vctrl focus pid %d", queued->pid));

  // Refine pane 1 with vchat, then render both panes.
  Run(shell, "vchat 1 shrink tasks that have no address space");
  Run(shell, "vctrl view 1");
  Run(shell, "vctrl view 2");

  // Session persistence: the state is replayable JSON.
  std::string saved = shell.Execute("vctrl save");
  std::printf("(vdb) vctrl save\n... %zu bytes of replayable session state ...\n", saved.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Visualinux-CPP interactive debugger ===\n");
  std::printf("booting the kernel and running the workload...\n\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  bool demo = false;
  bool incremental = false;
  for (int i = 1; i < argc; ++i) {
    demo = demo || std::strcmp(argv[i], "--demo") == 0;
    incremental = incremental || std::strcmp(argv[i], "--incremental") == 0;
  }
  dbg::KernelDebugger debugger(&kernel, dbg::LatencyModel::Free(),
                               incremental ? dbg::CacheConfig::Incremental()
                                           : dbg::CacheConfig());
  vision::RegisterFigureSymbols(&debugger, &workload);
  vision::DebuggerShell shell(&debugger);

  if (demo) {
    return Demo(shell, kernel);
  }

  std::printf("%s", shell.Execute("help").c_str());
  std::string line;
  while (true) {
    std::printf("(vdb) ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line == "step") {
      // Let the inferior run one workload step, then hand control back —
      // the next vplot/vctrl refresh sees the new mutation epoch.
      workload.Step();
      std::printf("stepped workload (epoch %llu)\n",
                  static_cast<unsigned long long>(kernel.generation()));
      continue;
    }
    if (line.empty()) {
      continue;
    }
    std::printf("%s", shell.Execute(line).c_str());
  }
  return 0;
}
