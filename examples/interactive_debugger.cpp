// The panel-based interactive debugger (paper §2.4, Figure 2).
//
// Runs the v-command shell over a live simulated kernel, connected through
// the vserve serving layer: a Server boots the kernel as a shard, Connect
// attaches a session, and the shell drives that session (single-user mode is
// literally a one-session server — see docs/serving.md). With --demo, a
// scripted session reproduces Figure 2's workflow: two primary panes (the
// process parenthood tree and the CFS scheduling tree), a "focus" search
// that finds the same task_struct in both, a secondary pane for the focused
// object, and a vchat refinement. Without --demo, a REPL reads v-commands
// from stdin.
//
//   $ ./interactive_debugger --demo
//   $ ./interactive_debugger            # type 'help' for commands
//   $ ./interactive_debugger --classic  # classic full-flush cache invalidation

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/serve/server.h"
#include "src/serve/shell.h"
#include "src/support/str.h"
#include "src/vision/figures.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

void Run(vserve::DebuggerShell& shell, const std::string& line) {
  std::printf("(vdb) %s\n%s\n", line.c_str(), shell.Execute(line).c_str());
}

int Demo(vserve::DebuggerShell& shell, vkern::Kernel& kernel) {
  std::printf("--- scripted demo: the paper's Figure 2 workflow ---\n\n");

  // Pane 1: the process parenthood tree; pane 2: the CFS scheduling tree.
  Run(shell, std::string("vplot 1 ") + vision::FindFigure("fig3_4")->viewcl);
  Run(shell, "vctrl split 1 h");
  Run(shell, std::string("vplot 2 ") + vision::FindFigure("fig7_1")->viewcl);
  Run(shell, "vctrl layout");

  // Focus: find a queued task in BOTH structures.
  vkern::task_struct* queued = nullptr;
  kernel.sched().ForEachQueued(0, [&](vkern::task_struct* t) {
    if (queued == nullptr && t->pid > 1) {
      queued = t;
    }
  });
  if (queued == nullptr) {
    std::printf("no queued task to focus on\n");
    return 1;
  }
  std::printf("focusing on pid %d (%s), managed by the parent tree AND the run queue:\n\n",
              queued->pid, queued->comm);
  Run(shell, vl::StrFormat("vctrl focus pid %d", queued->pid));

  // Refine pane 1 with vchat, then render both panes.
  Run(shell, "vchat 1 shrink tasks that have no address space");
  Run(shell, "vctrl view 1");
  Run(shell, "vctrl view 2");

  // Session persistence: the state is replayable JSON.
  std::string saved = shell.Execute("vctrl save");
  std::printf("(vdb) vctrl save\n... %zu bytes of replayable session state ...\n", saved.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Visualinux-CPP interactive debugger ===\n");
  std::printf("booting the kernel and running the workload...\n\n");
  bool demo = false;
  bool classic = false;
  for (int i = 1; i < argc; ++i) {
    demo = demo || std::strcmp(argv[i], "--demo") == 0;
    classic = classic || std::strcmp(argv[i], "--classic") == 0;
  }

  // The vserve front end: boot the simulated kernel as a shard, then attach
  // one session. More clients could Connect to the same server and share its
  // block cache, engines, and refresh dedup.
  vserve::Server server;
  vl::Status booted = server.BootShard("local", dbg::LatencyModel::Free());
  if (!booted.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", booted.ToString().c_str());
    return 1;
  }
  vserve::SessionOptions options;  // serving defaults: incremental + dedup
  if (classic) {
    options = vserve::SessionOptions::Classic();
  }
  auto client = server.Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
    return 1;
  }
  vserve::DebuggerShell shell(client->session());
  vkern::Kernel& kernel = *server.shard_kernel("local");
  vkern::Workload& workload = *server.shard_workload("local");

  if (demo) {
    return Demo(shell, kernel);
  }

  std::printf("%s", shell.Execute("help").c_str());
  std::string line;
  while (true) {
    std::printf("(vdb) ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line == "step") {
      // Let the inferior run one workload step, then hand control back —
      // the next vplot/vctrl refresh sees the new mutation epoch.
      workload.Step();
      std::printf("stepped workload (epoch %llu)\n",
                  static_cast<unsigned long long>(kernel.generation()));
      continue;
    }
    if (line.empty()) {
      continue;
    }
    std::printf("%s", shell.Execute(line).c_str());
  }
  return 0;
}
