// CVE-2022-0847 "Dirty Pipe" case study (paper §5.3, Figure 7).
//
// Builds the corrupted state on the live kernel: splice() moves a page-cache
// page into a pipe buffer whose ring slot still carries a stale
// PIPE_BUF_FLAG_CAN_MERGE, so a subsequent pipe write merges into — and
// corrupts — the read-only file's cached page. The object graph of the pipe,
// its buffers, and the shared page is plotted, and the paper's ViewQL trims
// every page except the shared one.
//
//   $ ./cve_dirtypipe

#include <cstdio>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/render.h"
#include "src/vkern/faults.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

// ViewCL: the pipe ring with per-buffer flags, and the victim file's page
// cache — the two structures whose overlap is the bug.
const char* kProgram = R"(
define Page as Box<page> [
  Text index
  Text<u64:x> flags
  Text refs: ${@this._refcount}
]
define PipeBuffer as Box<pipe_buffer> [
  Text offset, len
  Text<flag:pipe_buf_flag_bits> flags
  Text<string> ops: ${@this.ops != NULL ? @this.ops->name : 0}
  Link page -> Page(${@this.page})
]
define Pipe as Box<pipe_inode_info> [
  Text head, tail, ring_size
  Container bufs: Array(${@this.bufs}, ${@this.ring_size}).forEach |b| {
    yield PipeBuffer(${&@b})
  }
]
define AddressSpace as Box<address_space> [
  Text nrpages
  Container pagecache: Array.selectFrom(${&@this.i_pages}, Page)
]
define File as Box<file> [
  Text<string> path: ${@this.f_dentry->d_name}
  Link pagecache -> AddressSpace(${@this.f_mapping})
]
plot File(${target_file})
plot Pipe(${target_pipe})
)";

}  // namespace

int main() {
  std::printf("=== CVE-2022-0847 (Dirty Pipe) interactive reproduction ===\n\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel);

  std::printf("[1] running the vulnerable splice path against a read-only file...\n");
  vkern::DirtyPipeReport report =
      vkern::RunDirtyPipeScenario(&kernel, workload.process(0), /*vulnerable=*/true);
  std::printf("    spliced page: 0x%llx, buffer flags: 0x%x (CAN_MERGE leaked: %s)\n",
              static_cast<unsigned long long>(reinterpret_cast<uint64_t>(report.shared_page)),
              report.buggy_buf_flags, report.can_merge_leaked ? "YES" : "no");
  std::printf("    file byte 8: '%c' -> '%c'  => corrupted: %s\n\n", report.original_byte,
              report.corrupted_byte, report.file_content_corrupted ? "YES" : "no");

  debugger.symbols().AddGlobal("target_file", debugger.types().FindByName("file"),
                               reinterpret_cast<uint64_t>(report.victim_file));
  debugger.symbols().AddGlobal("target_pipe",
                               debugger.types().FindByName("pipe_inode_info"),
                               reinterpret_cast<uint64_t>(report.pipe));

  std::printf("[2] plotting the pipe ring and the victim file's page cache...\n\n");
  viewcl::Interpreter interp(&debugger);
  auto graph = interp.RunProgram(kProgram);
  if (!graph.ok()) {
    std::printf("error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  vision::RenderOptions options;
  options.show_addresses = true;
  options.max_container_preview = 20;
  vision::AsciiRenderer renderer(options);
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // §5.3's ViewQL: keep only the pages shared between the file and the pipe.
  std::printf("[3] ViewQL: trim every page except the file/pipe-shared ones...\n\n");
  const char* viewql = R"(
    file_pgs = SELECT File.pagecache FROM *
    file_pages = SELECT page FROM REACHABLE(file_pgs)
    pipe_bufs = SELECT pipe_buffer FROM *
    pipe_pages = SELECT page FROM REACHABLE(pipe_bufs)
    UPDATE (file_pages | pipe_pages) \ (file_pages & pipe_pages) WITH trimmed: true
  )";
  viewql::QueryEngine engine(graph->get(), &debugger);
  if (vl::Status status = engine.Execute(viewql); !status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // The surviving page is the one both structures own — the smoking gun.
  const viewql::BoxSet* file_pages = engine.FindSet("file_pages");
  const viewql::BoxSet* pipe_pages = engine.FindSet("pipe_pages");
  size_t shared = 0;
  for (uint64_t id : *file_pages) {
    if (pipe_pages->count(id) != 0) {
      ++shared;
      std::printf("[4] shared page box #%llu @0x%llx — owned by the file, writable "
                  "through the pipe\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>((*graph)->box(id)->addr()));
    }
  }
  std::printf("\n[5] control: the post-fix splice path (flags initialized) does not "
              "corrupt:\n");
  vkern::DirtyPipeReport fixed =
      vkern::RunDirtyPipeScenario(&kernel, workload.process(1), /*vulnerable=*/false);
  std::printf("    CAN_MERGE leaked: %s, corrupted: %s\n",
              fixed.can_merge_leaked ? "yes" : "no",
              fixed.file_content_corrupted ? "yes" : "no");
  return (shared == 1 && report.file_content_corrupted && !fixed.file_content_corrupted) ? 0
                                                                                         : 1;
}
