// Quickstart: boot the simulated kernel, attach the debugger, evaluate the
// paper's §1 motivating ViewCL program (the CFS runqueue), then refine the
// plot with the §1 ViewQL program — prune, flatten, and distill end to end.
//
//   $ ./quickstart

#include <cstdio>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

int main() {
  std::printf("=== Visualinux-CPP quickstart ===\n\n");

  // 1. Boot a kernel and let the paper's benchmark workload populate it.
  std::printf("[1] booting the simulated kernel and running the workload...\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  std::printf("    %d tasks alive, %u jiffies elapsed\n\n", kernel.procs().task_count(),
              static_cast<unsigned>(kernel.jiffies()));

  // 2. Attach the debugger (types + symbols + helpers, as GDB would).
  dbg::KernelDebugger debugger(&kernel);

  // 3. The paper's motivating ViewCL program: plot CPU 0's CFS run queue.
  const char* program = R"(
    // Declare a Box for a task_struct object
    define Task as Box<task_struct> [
      Text pid, comm
      Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
      Text<string> state: ${task_state(@this)}
      Text se.vruntime
    ]
    // cpu_rq(0) is the run queue of the first processor
    root = ${cpu_rq(0)->cfs.tasks_timeline}
    // RBTree is a predefined container; forEach distills it into task boxes
    sched_tree = RBTree(@root).forEach |node| {
      yield Task<task_struct.se.run_node>(@node)
    }
    plot @sched_tree
  )";
  std::printf("[2] evaluating the ViewCL program over the live kernel...\n");
  viewcl::Interpreter interp(&debugger);
  auto graph = interp.RunProgram(program);
  if (!graph.ok()) {
    std::printf("error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("    extracted %zu boxes\n\n", (*graph)->size());

  vision::AsciiRenderer renderer;
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // 4. The §1 ViewQL program: focus on process #2 and its direct children.
  const char* viewql = R"(
    task_all = SELECT task_struct FROM *
    task_2 = SELECT task_struct FROM task_all WHERE pid == 2 OR ppid == 2
    UPDATE task_all \ task_2 WITH collapsed: true
  )";
  std::printf("[3] refining with ViewQL (focus on pid 2 and its children)...\n");
  viewql::QueryEngine engine(graph->get(), &debugger);
  vl::Status status = engine.Execute(viewql);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("    %llu boxes updated\n\n",
              static_cast<unsigned long long>(engine.stats().boxes_updated));
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // 5. Debugger-transport accounting (what Table 4 measures).
  std::printf("[4] extraction cost: %llu target reads, %llu bytes, %.2f virtual ms "
              "(transport: %s)\n",
              static_cast<unsigned long long>(debugger.target().reads()),
              static_cast<unsigned long long>(debugger.target().bytes_read()),
              debugger.target().clock().millis(), debugger.target().model().name.c_str());
  return 0;
}
