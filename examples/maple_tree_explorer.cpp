// Live visualization of the maple tree (paper §3.1, Figures 3 and 4).
//
// Plots a process's VMA maple tree with full node internals (encoded node
// pointers, slots, pivots), then applies the paper's ViewQL refinement —
// collapse the slot pointer lists and trim the writable memory areas — and
// finally mutates the address space (mmap/munmap) and re-plots, showing the
// COW/RCU node churn.
//
//   $ ./maple_tree_explorer

#include <cstdio>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/figures.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

void PrintTreeStats(vkern::Kernel& kernel, vkern::mm_struct* mm) {
  std::printf("    maple tree: %llu entries, height %d, %llu nodes live in the slab\n",
              static_cast<unsigned long long>(kernel.maple().CountEntries(&mm->mm_mt)),
              kernel.maple().Height(&mm->mm_mt),
              static_cast<unsigned long long>(
                  kernel.maple().node_cache()->active_objects));
}

}  // namespace

int main() {
  std::printf("=== maple tree explorer (paper Figures 3/4) ===\n\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel);
  vision::RegisterFigureSymbols(&debugger, &workload);

  vkern::task_struct* target = workload.process(0);
  // Point target_task at a process we control below.
  debugger.symbols().AddGlobal("target_task", debugger.types().FindByName("task_struct"),
                               reinterpret_cast<uint64_t>(target));
  std::printf("[1] target: pid %d (%s)\n", target->pid, target->comm);
  PrintTreeStats(kernel, target->mm);

  // The figure program (fig9_2 carries the full MapleNode/MapleTree port of
  // the paper's Figure 3 ViewCL).
  const vision::FigureDef* figure = vision::FindFigure("fig9_2");
  viewcl::Interpreter interp(&debugger);
  auto graph = interp.RunProgram(figure->viewcl);
  if (!graph.ok()) {
    std::printf("error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[2] raw plot (%zu boxes):\n\n", (*graph)->size());
  vision::RenderOptions options;
  options.max_container_preview = 20;
  vision::AsciiRenderer renderer(options);

  // Switch the mm_struct to the maple-tree view before rendering.
  viewql::QueryEngine engine(graph->get(), &debugger);
  (void)engine.Execute("a = SELECT mm_struct FROM *\nUPDATE a WITH view: show_mt");
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // §3.1's refinement: collapse slot lists, trim writable VMAs.
  std::printf("[3] applying the paper's ViewQL refinement...\n\n");
  const char* viewql = R"(
    slots = SELECT maple_node.slots FROM *
    UPDATE slots WITH collapsed: true
    writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
    UPDATE writable_vmas WITH trimmed: true
  )";
  if (vl::Status status = engine.Execute(viewql); !status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", renderer.Render(**graph).c_str());

  // Mutate the address space and replot: the maple tree is a live structure.
  std::printf("[4] mutating the address space (8 mmaps, 3 munmaps)...\n");
  uint64_t doomed[3] = {};
  for (int i = 0; i < 8; ++i) {
    vkern::vm_area_struct* vma = kernel.procs().Mmap(
        target->mm, (static_cast<uint64_t>(i) + 1) * 0x2000,
        vkern::VM_READ | vkern::VM_WRITE | vkern::VM_ANON, nullptr, 0);
    if (vma != nullptr && i < 3) {
      doomed[i] = vma->vm_start;
    }
  }
  for (uint64_t addr : doomed) {
    kernel.procs().Munmap(target->mm, addr);
  }
  kernel.rcu().Synchronize();  // let the COW'd nodes drain
  PrintTreeStats(kernel, target->mm);

  viewcl::Interpreter interp2(&debugger);
  auto graph2 = interp2.RunProgram(figure->viewcl);
  if (!graph2.ok()) {
    std::printf("error: %s\n", graph2.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[5] replotted after mutation: %zu boxes (was %zu)\n", (*graph2)->size(),
              (*graph)->size());
  std::string why;
  std::printf("    tree invariants: %s\n",
              kernel.maple().Validate(&target->mm->mm_mt, &why) ? "OK" : why.c_str());
  return 0;
}
