// Swap area descriptors (paper Fig 17-6 territory): the swap_info table with
// a flag decorator, demonstrating Array over a fixed-size pointer table.
define SwapArea as Box<swap_info_struct> [
  Text<flag:swap_flag_bits> flags
  Text prio, pages, inuse_pages
]
areas = Array(${swap_info}).forEach |si| {
  yield switch ${@si == NULL} {
    case ${1}: NULL
    otherwise: SwapArea(@si)
  }
}
plot @areas
