// The process tree from init_task, following the children/sibling lists —
// a distilled version of the paper's Fig 3-4 program.
define Task as Box<task_struct> [
  Text pid, comm
  Link parent -> Task(${@this.parent})
  Container children: List(children).forEach |child| {
    yield Task<task_struct.sibling>(@child)
  }
]
plot Task(${&init_task})
