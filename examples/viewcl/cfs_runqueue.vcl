// The paper's §1 motivating program: CPU 0's CFS run queue as a red-black
// tree of task boxes. Lints clean against the standard kernel registries:
//   vctrl lint examples/viewcl/cfs_runqueue.vcl
define Task as Box<task_struct> [
  Text pid, comm
  Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
  Text<string> state: ${task_state(@this)}
  Text se.vruntime
]
root = ${cpu_rq(0)->cfs.tasks_timeline}
sched_tree = RBTree(@root).forEach |node| {
  yield Task<task_struct.se.run_node>(@node)
}
plot @sched_tree
