// Heterogeneous workqueue inspection (paper Figure 6).
//
// Work items of three different containing types share mm_percpu_wq's
// worklists; their types are only recoverable from the function-pointer
// field. The ViewCL program's Container + switch-case combination resolves
// each node to its true containing type via container_of.
//
//   $ ./workqueue_inspect

#include <cstdio>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

int main() {
  std::printf("=== workqueue inspector (paper Figure 6) ===\n\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  // Ensure a lively queue at the breakpoint.
  kernel.QueueMmPercpuWork(0);
  kernel.QueueMmPercpuWork(1);

  dbg::KernelDebugger debugger(&kernel);
  vision::RegisterFigureSymbols(&debugger, &workload);

  std::printf("pending work items: cpu0=%llu cpu1=%llu\n\n",
              static_cast<unsigned long long>(kernel.wqs().pending_count(0)),
              static_cast<unsigned long long>(kernel.wqs().pending_count(1)));

  viewcl::Interpreter interp(&debugger);
  auto graph = interp.RunProgram(vision::FindFigure("workqueue")->viewcl);
  if (!graph.ok()) {
    std::printf("error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  vision::RenderOptions options;
  options.max_container_preview = 16;
  std::printf("%s\n", vision::AsciiRenderer(options).Render(**graph).c_str());

  // Tally the resolved containing types — the "next pointer abstraction" of
  // Figure 6 resolved to concrete structs.
  int vmstat = 0;
  int lru = 0;
  int drain = 0;
  (*graph)->ForEachBox([&](const viewcl::VBox& box) {
    if (box.kernel_type() == "vmstat_work_item") {
      ++vmstat;
    } else if (box.kernel_type() == "lru_drain_item") {
      ++lru;
    } else if (box.kernel_type() == "drain_pages_item") {
      ++drain;
    }
  });
  std::printf("resolved containing types: %d vmstat_work_item, %d lru_drain_item, "
              "%d drain_pages_item\n",
              vmstat, lru, drain);

  // Drain the queues and replot: the lists empty out.
  kernel.wqs().ProcessPending(0);
  kernel.wqs().ProcessPending(1);
  viewcl::Interpreter interp2(&debugger);
  auto after = interp2.RunProgram(vision::FindFigure("workqueue")->viewcl);
  std::printf("\nafter ProcessPending(): %zu boxes (was %zu)\n",
              after.ok() ? (*after)->size() : 0, (*graph)->size());
  return (vmstat > 0 && lru > 0 && drain > 0) ? 0 : 1;
}
