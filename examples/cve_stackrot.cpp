// CVE-2023-3269 "StackRot" case study (paper §3.2, §5.3, Figure 5).
//
// Drives the two-CPU race on the live kernel: CPU#1 fetches a maple-tree node
// under mm_read_lock while CPU#0's expand_stack rebuilds the leaf and defers
// the free through RCU; the grace period completes anyway (the mmap lock is
// not an RCU read-side critical section) and CPU#1's stale pointer reads slab
// poison. Both data structures — the maple tree and the RCU waiting list —
// are visualized at the interesting breakpoints.
//
//   $ ./cve_stackrot

#include <cstdio>

#include "src/dbg/kernel_introspect.h"
#include "src/support/str.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/render.h"
#include "src/vkern/faults.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

// ViewCL for the per-CPU RCU state and its callback waiting list.
const char* kRcuProgram = R"(
define RcuHead as Box<rcu_head> [
  Text<fptr> func
  Link next -> RcuHead(${@this.next})
]
define RcuData as Box<rcu_data> [
  Text cpu, cblist_len, nesting, invoked
  Link cblist -> RcuHead(${@this.cblist_head})
]
define RcuState as Box<rcu_state> [
  Text gp_seq, gp_in_progress
]
plot RcuState(${&rcu_state})
plot RcuData(${&rcu_data[0]})
plot RcuData(${&rcu_data[1]})
)";

void Plot(dbg::KernelDebugger* debugger, const char* program, const char* title) {
  viewcl::Interpreter interp(debugger);
  auto graph = interp.RunProgram(program);
  if (!graph.ok()) {
    std::printf("plot error: %s\n", graph.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n%s\n", title, vision::AsciiRenderer().Render(**graph).c_str());
}

}  // namespace

int main() {
  std::printf("=== CVE-2023-3269 (StackRot) interactive reproduction ===\n\n");
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  kernel.rcu().Synchronize();  // drain workload churn so the cblist starts clean
  dbg::KernelDebugger debugger(&kernel);

  vkern::task_struct* victim = workload.process(0);
  vkern::mm_struct* mm = victim->mm;
  std::printf("victim: pid %d (%s), %d VMAs, stack at 0x%llx\n\n", victim->pid, victim->comm,
              mm->map_count, static_cast<unsigned long long>(mm->start_stack));

  // Breakpoint 1: CPU#1 (the reader) walks the tree under mm_read_lock and
  // fetches the leaf node containing the stack VMA.
  std::printf("[CPU#1] mm_read_lock(&mm->mmap_lock); find_vma_prev() -> mas_walk()\n");
  vkern::maple_node* fetched = kernel.maple().LeafContaining(&mm->mm_mt, mm->start_stack);
  std::printf("[CPU#1] node pointer fetched: 0x%llx  (NOT under rcu_read_lock!)\n\n",
              static_cast<unsigned long long>(reinterpret_cast<uint64_t>(fetched)));

  // Breakpoint 2: CPU#0 expands the stack; mas_store_prealloc() rebuilds the
  // leaf copy-on-write and queues the old node on the RCU waiting list.
  std::printf("[CPU#0] expand_stack() -> mas_store_prealloc() -> ma_free_rcu(node)\n");
  kernel.maple().RebuildLeaf(&mm->mm_mt, mm->start_stack);
  std::printf("[CPU#0] call_rcu(&node->rcu, mt_free_rcu): node is now pending-free\n\n");
  Plot(&debugger, kRcuProgram, "RCU state: the node sits on CPU#0's waiting list");

  // Breakpoint 3: the grace period elapses — nothing holds it off.
  std::printf("[CPU#0] mm_read_unlock(); ... rcu_do_batch() -> mt_free_rcu() -> "
              "kmem_cache_free()\n");
  kernel.rcu().Synchronize();
  Plot(&debugger, kRcuProgram, "RCU state: the waiting list has drained");

  // Breakpoint 4: CPU#1 dereferences its stale pointer.
  bool poisoned = vkern::SlabAllocator::IsPoisoned(fetched, sizeof(vkern::maple_node));
  std::printf("[CPU#1] mas_prev() -> rcu_dereference_check(node...)\n");
  std::printf("[CPU#1] *** USE-AFTER-FREE: the node reads as %s ***\n\n",
              poisoned ? "slab poison (0x6b)" : "live data (?)");

  // The full scripted scenario (what the faults library automates).
  std::printf("re-running the packaged scenario on another process:\n");
  vkern::StackRotReport report = vkern::RunStackRotScenario(&kernel, workload.process(1));
  std::printf("  node 0x%llx: on_cblist=%s, grace_period_completed=%s, uaf_detected=%s\n",
              static_cast<unsigned long long>(report.fetched_addr),
              report.node_was_on_cblist ? "yes" : "no",
              report.grace_period_completed ? "yes" : "no",
              report.uaf_detected ? "YES" : "no");
  std::printf("\nconclusion: mmap_lock does not pin RCU readers; the fix must take the RCU\n"
              "read lock around the walk (see faults_test.cc's control experiment).\n");
  return report.uaf_detected && poisoned ? 0 : 1;
}
